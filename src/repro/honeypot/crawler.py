"""Profile crawling under privacy constraints.

The paper crawled likers' public profiles with Selenium, obtaining friend
lists (where public) and liked-page lists, and got demographics from the
page-insights reports.  The crawler here plays the same role against the
simulated network: everything privacy-sensitive is fetched through the
read-only :class:`repro.osn.api.PlatformAPI` (which enforces
:class:`repro.osn.privacy.PrivacyPolicy` and counts requests), while
demographics come from the insights reports, which see private attributes
in aggregate (paper footnote 1).  The output is
:class:`repro.honeypot.storage.LikerRecord` objects — the analysis layer's
only view of likers.

The crawl surface may be unreliable (see :mod:`repro.osn.faults`): any API
call may raise a :class:`~repro.osn.faults.CrawlFault` even after the
resilient client's retries.  The crawler degrades gracefully instead of
aborting the study — a liker whose endpoints stay down yields a *partial*
record (``crawl_status="partial"``, the lost field groups named in
``failed_fields``), a baseline user who cannot be crawled drops out of the
sample, and the termination recheck counts an unreachable profile as alive
(keeping the terminated count the lower bound the paper reports).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, TypeVar

from repro.honeypot.storage import (
    CRAWL_COMPLETE,
    CRAWL_PARTIAL,
    BaselineRecord,
    LikerRecord,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.osn.api import PlatformAPI, ReadEndpoints
from repro.osn.directory import PublicDirectory
from repro.osn.faults import CrawlFault
from repro.osn.ids import UserId
from repro.osn.network import SocialNetwork
from repro.osn.profile import UserProfile
from repro.util.rng import RngStream

T = TypeVar("T")


class ProfileCrawler:
    """Crawls liker profiles and the random baseline sample."""

    def __init__(
        self,
        network: SocialNetwork,
        api: Optional[ReadEndpoints] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._network = network
        self.api = api if api is not None else PlatformAPI(network)
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def insights_profile(self, user_id: UserId) -> UserProfile:
        """Demographics via the page-insights view — the ONE ground-truth read.

        Everything else the crawler collects goes through ``self.api`` so
        privacy censoring and request accounting happen at the API
        boundary.  Demographics are the single documented exemption: the
        paper's page-insights reports aggregated *private* attributes of a
        page's likers (paper footnote 1), so the crawler may read the
        profile object directly for gender/age/country — and only here.
        Any other ``self._network`` read in this class is a bug.
        """
        return self._network.user(user_id)

    def _guarded(self, thunk: Callable[[], T], failed: List[str], tag: str) -> Optional[T]:
        """Run one API call; on a crawl fault, record the lost field group."""
        try:
            return thunk()
        except CrawlFault:
            if tag not in failed:
                failed.append(tag)
            return None

    def crawl_liker(self, user_id: UserId, campaign_ids: List[str]) -> LikerRecord:
        """Crawl one liker's public profile.

        Demographics come from the insights reports (always available in
        aggregate); friend and like data go through the platform API, so
        censoring is enforced at the API boundary, not here.  A crawl
        fault on any API call yields a partial record rather than an
        exception: the study keeps its campaign tables complete even when
        individual profiles are unreachable.
        """
        profile = self.insights_profile(user_id)
        failed: List[str] = []
        visible_friends = self._guarded(
            lambda: self.api.get_friend_list(user_id), failed, "friends"
        )
        declared = self._guarded(
            lambda: self.api.get_declared_friend_count(user_id), failed, "friends"
        )
        liked_pages = self._guarded(
            lambda: self.api.get_page_likes(user_id), failed, "likes"
        )
        declared_likes = self._guarded(
            lambda: self.api.get_declared_like_count(user_id), failed, "likes"
        )
        self.metrics.inc("crawl.likers_total")
        if failed:
            self.metrics.inc("crawl.likers_partial")
        return LikerRecord(
            user_id=int(user_id),
            gender=profile.gender.value,
            age_bracket=profile.age_bracket,
            country=profile.country,
            friend_list_public=visible_friends is not None,
            declared_friend_count=declared,
            visible_friend_ids=visible_friends if visible_friends is not None else [],
            liked_page_ids=liked_pages if liked_pages is not None else [],
            declared_like_count=declared_likes if declared_likes is not None else 0,
            campaign_ids=list(campaign_ids),
            crawl_status=CRAWL_COMPLETE if not failed else CRAWL_PARTIAL,
            failed_fields=failed,
        )

    def crawl_likers(
        self,
        liker_campaigns: Dict[UserId, List[str]],
        on_record: Optional[Callable[[LikerRecord], None]] = None,
    ) -> Dict[int, LikerRecord]:
        """Crawl every liker; ``liker_campaigns`` maps liker -> campaign ids.

        ``on_record`` (when given) is called with each record as soon as it
        is crawled — the checkpoint journal's write-ahead hook, so a crash
        mid-crawl loses at most the record in flight.
        """
        records: Dict[int, LikerRecord] = {}
        with self.metrics.span("crawl.likers"):
            for user_id, campaigns in sorted(liker_campaigns.items()):
                record = self.crawl_liker(user_id, campaigns)
                records[int(user_id)] = record
                if on_record is not None:
                    on_record(record)
        return records

    def crawl_baseline(
        self,
        rng: RngStream,
        sample_size: int,
        on_record: Optional[Callable[[BaselineRecord], None]] = None,
    ) -> List[BaselineRecord]:
        """Sample the public directory and record page-like counts.

        Reproduces the paper's baseline: "a random set of 2000 Facebook
        users, extracted from an unbiased sample obtained by randomly
        sampling Facebook public directory".  A sampled user whose count
        cannot be crawled is dropped (a fake zero would skew the baseline
        median downward); the surviving sample stays unbiased because
        faults are independent of user attributes.
        """
        directory = PublicDirectory(self._network)
        listed = directory.searchable_user_ids()
        sample_size = min(sample_size, len(listed))
        sample = directory.sample_users(rng, sample_size)
        records: List[BaselineRecord] = []
        with self.metrics.span("crawl.baseline"):
            for user_id in sample:
                try:
                    count = self.api.get_declared_like_count(user_id)
                except CrawlFault:
                    self.metrics.inc("crawl.baseline_dropped")
                    continue
                record = BaselineRecord(
                    user_id=int(user_id),
                    declared_like_count=count if count is not None else 0,
                )
                records.append(record)
                if on_record is not None:
                    on_record(record)
        self.metrics.inc("crawl.baseline_sampled", len(records))
        return records

    def recheck_terminations(self, user_ids: Iterable[UserId]) -> List[int]:
        """The month-later follow-up: which likers' profiles are gone.

        A profile that the API no longer serves is a terminated account —
        exactly how the paper could tell (profile pages 404ed).  A crawl
        *fault* is not evidence of termination, so an unreachable profile
        counts as alive and the result stays a lower bound.
        """
        terminated: List[int] = []
        with self.metrics.span("crawl.termination_recheck"):
            for user_id in sorted(set(int(u) for u in user_ids)):
                try:
                    profile = self.api.get_profile(UserId(user_id))
                except CrawlFault:
                    self.metrics.inc("crawl.termination_recheck_unreachable")
                    continue
                if profile is None:
                    terminated.append(user_id)
        self.metrics.inc("crawl.terminated_confirmed", len(terminated))
        return terminated
