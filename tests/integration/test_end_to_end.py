"""Integration tests: whole-study invariants and paper-shape assertions."""

import numpy as np
import pytest

from repro.analysis.demographics import country_distribution
from repro.analysis.likes import baseline_like_counts, campaign_like_counts
from repro.analysis.social import provider_social_stats
from repro.core import paperdata
from repro.honeypot.campaignspec import paper_campaigns


class TestScaledTable1:
    def test_like_counts_track_paper_at_scale(self, small_dataset):
        """At scale 0.1 every campaign should land near paper_likes / 10."""
        specs = {s.campaign_id: s for s in paper_campaigns()}
        for campaign_id, record in small_dataset.campaigns.items():
            expected = specs[campaign_id].paper_likes
            if expected is None:
                assert record.total_likes == 0
                continue
            scaled = expected * 0.1
            assert 0.4 * scaled <= record.total_likes <= 1.9 * scaled, campaign_id

    def test_farm_orders_exact_at_fulfillment(self, small_dataset):
        """Farm deliveries are deterministic in count (fulfillment preset)."""
        for campaign_id in ("SF-ALL", "SF-USA", "AL-ALL", "AL-USA", "MS-USA", "BL-USA"):
            record = small_dataset.campaign(campaign_id)
            expected = paperdata.TABLE1_LIKES[campaign_id] * 0.1
            assert abs(record.total_likes - expected) <= 2, campaign_id


class TestCrossCutting:
    def test_dataset_never_contains_ground_truth_fields(self, small_dataset):
        liker = next(iter(small_dataset.likers.values()))
        assert not hasattr(liker, "cohort")
        assert not hasattr(liker, "is_fake")

    def test_private_lists_have_no_friend_data(self, small_dataset):
        for liker in small_dataset.likers.values():
            if not liker.friend_list_public:
                assert liker.declared_friend_count is None
                assert liker.visible_friend_ids == []

    def test_friend_medians_ordering_matches_table3(self, small_dataset):
        """Paper Table 3 median friends: BL 850 > AL 343 > SF 155 > MS 68."""
        rows = {r.provider: r for r in provider_social_stats(small_dataset)}
        bl = rows["BoostLikes.com"].friend_count.median
        al = rows["AuthenticLikes.com"].friend_count.median
        sf = rows["SocialFormula.com"].friend_count.median
        assert bl > al > sf

    def test_like_median_gap_vs_baseline(self, small_dataset):
        baseline_median = float(np.median(baseline_like_counts(small_dataset)))
        farm_median = float(np.median(campaign_like_counts(small_dataset, "SF-ALL")))
        assert farm_median > 15 * baseline_median

    def test_geolocation_shapes(self, small_dataset):
        # FB targeted campaigns: >= 87% from target country (paper 4.1)
        for campaign_id, target in (
            ("FB-USA", "US"), ("FB-FRA", "FR"), ("FB-IND", "IN"), ("FB-EGY", "EG"),
        ):
            top, share = country_distribution(small_dataset, campaign_id).top_country()
            assert top == target, campaign_id
            assert share >= paperdata.FB_TARGETED_SHARE_MIN - 0.1, campaign_id


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        from repro.core import HoneypotExperiment
        from repro.honeypot.study import StudyConfig

        def run(seed):
            config = StudyConfig.small(seed=seed)
            # shrink further for speed: determinism only needs identity
            config.population.n_users = 300
            experiment = HoneypotExperiment(config)
            dataset = experiment.run().dataset
            return (
                {c: r.total_likes for c, r in dataset.campaigns.items()},
                sorted(dataset.likers),
                [r.declared_like_count for r in dataset.baseline[:50]],
            )

        assert run(99) == run(99)

    def test_different_seed_differs(self):
        from repro.core import HoneypotExperiment
        from repro.honeypot.study import StudyConfig

        def totals(seed):
            config = StudyConfig.small(seed=seed)
            config.population.n_users = 300
            experiment = HoneypotExperiment(config)
            dataset = experiment.run().dataset
            return sorted(dataset.likers)

        assert totals(101) != totals(102)
