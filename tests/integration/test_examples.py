"""Smoke tests: the fast example scripts run end to end and exit 0.

(The paper-scale examples are exercised by the benchmark suite instead —
they take tens of seconds each.)
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=None, monkeypatch=None):
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    except SystemExit as exit_info:
        return exit_info.code or 0
    return 0


class TestExamplesRun:
    def test_quickstart(self, monkeypatch, capsys):
        code = run_example("quickstart.py", ["20140312"], monkeypatch)
        out = capsys.readouterr().out
        assert code == 0
        assert "shape checks passed" in out

    def test_custom_farm(self, monkeypatch, capsys):
        code = run_example("custom_farm.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert code == 0
        assert "DripLikes" in out

    def test_fraud_detection(self, monkeypatch, capsys):
        code = run_example("fraud_detection.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert code == 0
        assert "Detector performance" in out
        assert "lifts BoostLikes recall" in out

    @pytest.mark.slow
    def test_platform_defender(self, monkeypatch, capsys):
        code = run_example("platform_defender.py", monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert code == 0
        assert "enforcement dilemma" in out.lower()
