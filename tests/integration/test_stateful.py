"""Hypothesis stateful tests: the social network under arbitrary op sequences.

A rule-based state machine drives `SocialNetwork` through random interleaved
sequences of user/page creation, likes, unlikes, friendships, and
terminations, checking global invariants after every step.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender


class SocialNetworkMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.net = SocialNetwork()
        self.users = []
        self.pages = []
        self.live_users = set()
        self.expected_likes = set()  # (user, page) currently liked
        self.clock = 0

    def _tick(self):
        self.clock += 1
        return self.clock

    @rule(age=st.integers(min_value=13, max_value=90),
          country=st.sampled_from(["US", "IN", "TR"]))
    def create_user(self, age, country):
        profile = self.net.create_user(
            gender=Gender.FEMALE, age=age, country=country
        )
        self.users.append(profile.user_id)
        self.live_users.add(profile.user_id)

    @rule()
    def create_page(self):
        page = self.net.create_page(f"page-{len(self.pages)}")
        self.pages.append(page.page_id)

    @precondition(lambda self: self.live_users and self.pages)
    @rule(data=st.data())
    def like(self, data):
        user = data.draw(st.sampled_from(sorted(self.live_users)))
        page = data.draw(st.sampled_from(self.pages))
        was_new = (user, page) not in self.expected_likes
        assert self.net.like_page(user, page, self._tick()) == was_new
        self.expected_likes.add((user, page))

    @precondition(lambda self: self.expected_likes)
    @rule(data=st.data())
    def unlike(self, data):
        user, page = data.draw(st.sampled_from(sorted(self.expected_likes)))
        assert self.net.remove_like(user, page, self._tick())
        self.expected_likes.discard((user, page))

    @precondition(lambda self: len(self.live_users) >= 2)
    @rule(data=st.data())
    def befriend(self, data):
        pair = data.draw(
            st.lists(st.sampled_from(sorted(self.live_users)),
                     min_size=2, max_size=2, unique=True)
        )
        self.net.add_friendship(pair[0], pair[1])
        assert self.net.graph.are_friends(pair[1], pair[0])

    @precondition(lambda self: self.live_users)
    @rule(data=st.data(), purge=st.booleans())
    def terminate(self, data, purge):
        user = data.draw(st.sampled_from(sorted(self.live_users)))
        self.net.terminate_account(user, self._tick(), purge_likes=purge)
        self.live_users.discard(user)
        if purge:
            self.expected_likes = {
                (u, p) for (u, p) in self.expected_likes if u != user
            }

    @invariant()
    def like_counts_consistent(self):
        if not hasattr(self, "net"):
            return
        for page in self.pages:
            expected = {u for (u, p) in self.expected_likes if p == page}
            # purged/unliked users are gone; non-purged terminated users stay
            current = set(self.net.page_liker_ids(page))
            assert expected <= current

    @invariant()
    def per_user_counts_match(self):
        if not hasattr(self, "net"):
            return
        for user in self.users:
            expected = {p for (u, p) in self.expected_likes if u == user}
            if user in self.live_users:
                assert self.net.user_liked_page_ids(user) == expected

    @invariant()
    def terminated_users_have_no_friends(self):
        if not hasattr(self, "net"):
            return
        for user in set(self.users) - self.live_users:
            assert self.net.friend_count(user) == 0

    @invariant()
    def friendship_degree_sum_even(self):
        if not hasattr(self, "net"):
            return
        total = sum(self.net.friend_count(u) for u in self.users)
        assert total == 2 * self.net.graph.edge_count


TestSocialNetworkStateful = SocialNetworkMachine.TestCase
TestSocialNetworkStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
