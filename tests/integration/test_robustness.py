"""Robustness: the paper's shapes must hold across seeds, not by luck."""

import pytest

from repro.core.experiment import HoneypotExperiment
from repro.honeypot.study import StudyConfig


@pytest.mark.parametrize("seed", [1, 424242, 20141004])
def test_shape_checks_across_seeds(seed):
    results = HoneypotExperiment(StudyConfig.small(seed=seed)).run()
    failing = [c for c in results.shape_checks() if not c.passed]
    assert not failing, [(c.name, c.detail) for c in failing]


def test_half_scale_preserves_shapes():
    """Scaling is not just 0.1 vs 1.0: intermediate scales hold too."""
    config = StudyConfig(
        seed=5,
        scale=0.25,
        population=type(StudyConfig.small().population)(
            n_users=1200, n_normal_pages=600, n_spam_pages=160
        ),
        baseline_sample_size=600,
    )
    results = HoneypotExperiment(config).run()
    failing = [c for c in results.shape_checks() if not c.passed]
    assert not failing, [(c.name, c.detail) for c in failing]


def test_monitor_misses_nothing():
    """Every ground-truth honeypot like is eventually observed."""
    experiment = HoneypotExperiment(StudyConfig.small(seed=9))
    results = experiment.run()
    artifacts = experiment.artifacts
    for campaign_id, page_id in artifacts.page_ids.items():
        truth = {
            event.user_id
            for event in artifacts.network.likes.for_page(page_id)
        }
        observed = set(results.dataset.campaign(campaign_id).liker_ids)
        assert observed == truth, campaign_id
