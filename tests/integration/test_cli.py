"""Tests for the repro-study command-line interface."""

import csv

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory, small_dataset):
    path = tmp_path_factory.mktemp("cli") / "study.jsonl"
    small_dataset.to_jsonl(path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == pytest.approx(0.1)
        assert args.seed == 20140312

    def test_detect_threshold(self):
        args = build_parser().parse_args(
            ["detect", "x.jsonl", "--like-threshold", "100"]
        )
        assert args.like_threshold == 100.0


class TestCommands:
    def test_run_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "mini.jsonl"
        rc = main([
            "run", "--scale", "0.05", "--seed", "7",
            "--population", "250", "--out", str(out),
        ])
        captured = capsys.readouterr().out
        assert out.exists()
        assert "study complete" in captured
        assert rc in (0, 1)  # tiny worlds may fail some shape checks

    def test_report_renders_everything(self, dataset_path, capsys):
        rc = main(["report", str(dataset_path)])
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("Table 1", "Figure 5", "Shape checks"):
            assert token in out

    def test_export_writes_csvs(self, dataset_path, tmp_path, capsys):
        rc = main(["export", str(dataset_path), "--dir", str(tmp_path / "csv")])
        assert rc == 0
        table1 = tmp_path / "csv" / "table1.csv"
        assert table1.exists()
        with table1.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 14

    def test_detect_flags_fakes(self, dataset_path, capsys):
        rc = main(["detect", str(dataset_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flagged as likely fake" in out
        # the stealth farm's row shows partial flagging
        assert "BL-USA" in out

    def test_missing_dataset_graceful_error(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "nope.jsonl")])
        err = capsys.readouterr().err
        assert rc == 2
        assert "not found" in err

    def test_detect_threshold_changes_counts(self, dataset_path, capsys):
        main(["detect", str(dataset_path), "--like-threshold", "1"])
        strict = capsys.readouterr().out
        main(["detect", str(dataset_path), "--like-threshold", "100000"])
        lenient = capsys.readouterr().out

        def flagged_total(text):
            line = next(l for l in text.splitlines() if "flagged" in l)
            return int(line.split("/")[0])

        assert flagged_total(strict) >= flagged_total(lenient)


class TestStoreCommands:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory, small_dataset):
        from repro.store import HoneypotStore

        path = tmp_path_factory.mktemp("store-cli") / "study.sqlite"
        with HoneypotStore.create(path) as store:
            store.ingest_dataset(small_dataset)
        return path

    def test_run_with_store_writes_both_outputs(self, tmp_path, capsys):
        out = tmp_path / "mini.jsonl"
        db = tmp_path / "mini.sqlite"
        rc = main([
            "run", "--scale", "0.05", "--seed", "7",
            "--population", "250", "--out", str(out), "--store", str(db),
        ])
        captured = capsys.readouterr().out
        assert rc in (0, 1)
        assert db.exists()
        assert "rows/s" in captured

    def test_query_overlap(self, store_path, capsys):
        rc = main(["query", str(store_path), "overlap"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Liker multiplicity" in out
        assert "rows read" in out

    def test_query_temporal(self, store_path, capsys):
        rc = main(["query", str(store_path), "temporal"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Temporal delivery profiles" in out

    def test_query_summary(self, store_path, capsys):
        rc = main(["query", str(store_path), "summary"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Campaign summary" in out

    def test_query_missing_store_exits_2(self, tmp_path, capsys):
        rc = main(["query", str(tmp_path / "nope.sqlite"), "overlap"])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_query_non_store_file_exits_2(self, dataset_path, capsys):
        rc = main(["query", str(dataset_path), "overlap"])
        assert rc == 2
        assert "store error" in capsys.readouterr().err


class TestCheckpointFlags:
    SMALL = ["run", "--scale", "0.02", "--seed", "11"]

    def test_parser_accepts_checkpoint_flags(self):
        args = build_parser().parse_args([
            "run", "--checkpoint-dir", "ck", "--checkpoint-every", "2.5",
        ])
        assert str(args.checkpoint_dir) == "ck"
        assert args.checkpoint_every == 2.5
        assert args.resume is None

    def test_checkpoint_dir_plus_resume_is_a_usage_error(self, tmp_path, capsys):
        rc = main(self.SMALL + [
            "--checkpoint-dir", str(tmp_path / "a"), "--resume", str(tmp_path / "b"),
        ])
        assert rc == 2
        assert "--resume" in capsys.readouterr().err

    def test_checkpointed_run_then_resume(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        out = tmp_path / "first.jsonl"
        rc = main(self.SMALL + [
            "--out", str(out), "--checkpoint-dir", str(ck), "--checkpoint-every", "5",
        ])
        assert rc in (0, 1)  # tiny worlds may fail some shape checks
        assert "checkpoint (fresh):" in capsys.readouterr().out
        out2 = tmp_path / "second.jsonl"
        rc = main(self.SMALL + ["--out", str(out2), "--resume", str(ck)])
        assert rc in (0, 1)
        assert "checkpoint (resumed):" in capsys.readouterr().out
        assert out.read_bytes() == out2.read_bytes()

    def test_refusal_to_clobber_exits_3(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        main(self.SMALL + ["--out", str(tmp_path / "a.jsonl"),
                           "--checkpoint-dir", str(ck)])
        capsys.readouterr()
        rc = main(self.SMALL + ["--out", str(tmp_path / "b.jsonl"),
                                "--checkpoint-dir", str(ck)])
        assert rc == 3
        assert "checkpoint error" in capsys.readouterr().err

    def test_resume_with_wrong_seed_exits_3(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        main(self.SMALL + ["--out", str(tmp_path / "a.jsonl"),
                           "--checkpoint-dir", str(ck)])
        capsys.readouterr()
        rc = main(["run", "--scale", "0.02", "--seed", "12",
                   "--out", str(tmp_path / "b.jsonl"), "--resume", str(ck)])
        assert rc == 3
        assert "seed" in capsys.readouterr().err

    def test_resume_with_wrong_scale_exits_3_naming_fingerprints(
        self, tmp_path, capsys
    ):
        # Same seed, different --scale: the config fingerprints differ, so
        # resume must refuse (exit 3) and name both fingerprints rather
        # than replay a checkpoint from another world.
        ck = tmp_path / "ck"
        main(self.SMALL + ["--out", str(tmp_path / "a.jsonl"),
                           "--checkpoint-dir", str(ck)])
        capsys.readouterr()
        rc = main(["run", "--scale", "0.03", "--seed", "11",
                   "--out", str(tmp_path / "b.jsonl"), "--resume", str(ck)])
        err = capsys.readouterr().err
        assert rc == 3
        assert "config fingerprint" in err
        # both fingerprints are quoted, 16 hex chars each
        import re
        assert len(re.findall(r"'[0-9a-f]{16}'", err)) == 2

    def test_keyboard_interrupt_exits_130(self, monkeypatch, tmp_path, capsys):
        from repro.core.experiment import HoneypotExperiment

        def interrupted(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(HoneypotExperiment, "run", interrupted)
        rc = main(self.SMALL + ["--out", str(tmp_path / "a.jsonl")])
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err
