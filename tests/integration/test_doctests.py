"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.analysis.stats
import repro.osn.graph
import repro.osn.profile
import repro.sim.clock
import repro.sim.engine
import repro.sim.process
import repro.util.distributions
import repro.util.rng
import repro.util.tables
import repro.util.timeutil

MODULES = [
    repro.analysis.stats,
    repro.osn.graph,
    repro.osn.profile,
    repro.sim.clock,
    repro.sim.engine,
    repro.sim.process,
    repro.util.distributions,
    repro.util.rng,
    repro.util.tables,
    repro.util.timeutil,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
