"""Store backend tests."""
