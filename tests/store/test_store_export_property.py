"""The store export property: ``run --store`` equals ``--out`` byte for byte.

One seeded study per execution mode — plain, ``--chaos`` (fault-injected
crawl), ``--jobs 4`` (sharded) — each through the real CLI, then the
store's JSONL export is compared byte for byte against the legacy
``--out`` file of the *same* run.
"""

import pytest

from repro.cli import main
from repro.store import HoneypotStore


@pytest.mark.parametrize(
    "mode, extra",
    [
        ("plain", []),
        ("chaos", ["--chaos"]),
        ("sharded", ["--jobs", "4"]),
    ],
)
def test_store_export_is_byte_identical(tmp_path, capsys, mode, extra):
    out = tmp_path / f"{mode}.jsonl"
    db = tmp_path / f"{mode}.sqlite"
    assert main(
        ["run", "--seed", "20140312", "--out", str(out), "--store", str(db)]
        + extra
    ) == 0
    assert f"-> {db}" in capsys.readouterr().out
    exported = tmp_path / f"{mode}-store.jsonl"
    with HoneypotStore.open(db) as store:
        store.to_jsonl(exported)
    assert exported.read_bytes() == out.read_bytes()
