"""Store queries pinned equal to their in-memory reference analyses."""

import pytest

from repro.analysis import overlap, summary, temporal
from repro.store import HoneypotStore, StoreError
from repro.store import queries


@pytest.fixture(scope="module")
def store(tmp_path_factory, small_dataset):
    path = tmp_path_factory.mktemp("queries") / "study.sqlite"
    with HoneypotStore.create(path) as s:
        s.ingest_dataset(small_dataset)
        yield s


class TestOverlapQueries:
    def test_overlap_summary_equals_reference(self, store, small_dataset):
        assert queries.overlap_summary(store) == overlap.overlap_summary(
            small_dataset
        )

    def test_shared_liker_counts_equal_reference(self, store, small_dataset):
        got = queries.shared_liker_counts(store)
        want = overlap.shared_liker_counts(small_dataset)
        assert got == want
        # Pair iteration order must also match (campaign insertion order).
        assert list(got) == list(want)

    def test_matrix_is_complete_over_all_campaign_pairs(
        self, store, small_dataset
    ):
        n = len(small_dataset.campaigns)
        assert len(queries.shared_liker_counts(store)) == n * (n - 1) // 2


class TestTemporalQueries:
    def test_profiles_equal_reference(self, store, small_dataset):
        for campaign_id in small_dataset.campaign_ids():
            assert queries.temporal_profile(store, campaign_id) == (
                temporal.temporal_profile(small_dataset, campaign_id)
            )

    def test_series_equal_reference(self, store, small_dataset):
        for campaign_id in small_dataset.campaign_ids():
            assert queries.cumulative_series(store, campaign_id) == (
                temporal.cumulative_series(small_dataset, campaign_id)
            )

    def test_unknown_campaign_refuses(self, store):
        with pytest.raises(StoreError, match="no campaign"):
            queries.temporal_profile(store, "NOPE-1")


class TestSummaryQueries:
    def test_table1_equals_reference(self, store, small_dataset):
        assert queries.table1(store) == summary.table1(small_dataset)

    def test_queries_account_rows_read(self, store):
        before = dict(store.rows_read)
        queries.table1(store)
        assert store.rows_read.get("campaigns", 0) > before.get("campaigns", 0)
