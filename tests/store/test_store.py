"""HoneypotStore lifecycle, ingest accounting, and export identity."""

import sqlite3

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.store import STORE_SCHEMA, HoneypotStore, StoreError
from repro.store.schema import META_SCHEMA_KEY


@pytest.fixture()
def store(tmp_path, small_dataset):
    with HoneypotStore.create(tmp_path / "study.sqlite") as s:
        s.ingest_dataset(small_dataset)
        yield s


class TestLifecycle:
    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "study.sqlite"
        path.write_text("occupied")
        with pytest.raises(StoreError, match="already exists"):
            HoneypotStore.create(path)

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="not found"):
            HoneypotStore.open(tmp_path / "nope.sqlite")

    def test_open_refuses_non_database(self, tmp_path):
        path = tmp_path / "study.jsonl"
        path.write_text('{"type": "meta"}\n')
        with pytest.raises(StoreError, match="not a honeypot store"):
            HoneypotStore.open(path)

    def test_open_refuses_foreign_schema_tag(self, tmp_path):
        path = tmp_path / "future.sqlite"
        with HoneypotStore.create(path) as store:
            store._db.execute(
                "UPDATE meta SET value = ? WHERE key = ?",
                ("repro.store/schema@99", META_SCHEMA_KEY),
            )
            store._db.commit()
        with pytest.raises(StoreError, match="schema@99"):
            HoneypotStore.open(path)

    def test_open_refuses_plain_sqlite_database(self, tmp_path):
        path = tmp_path / "other.sqlite"
        db = sqlite3.connect(str(path))
        db.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        db.commit()
        db.close()
        with pytest.raises(StoreError, match="refusing to guess"):
            HoneypotStore.open(path)

    def test_schema_tag_round_trips(self, tmp_path):
        path = tmp_path / "study.sqlite"
        HoneypotStore.create(path).close()
        with HoneypotStore.open(path) as store:
            row = store._db.execute(
                "SELECT value FROM meta WHERE key = ?", (META_SCHEMA_KEY,)
            ).fetchone()
        assert row[0] == STORE_SCHEMA


class TestIngest:
    def test_counts_match_dataset(self, store, small_dataset):
        counts = store.counts()
        assert counts["campaigns"] == len(small_dataset.campaigns)
        assert counts["likers"] == len(small_dataset.likers)
        assert counts["baseline"] == len(small_dataset.baseline)
        assert counts["observations"] == small_dataset.total_likes
        assert counts["liker_campaigns"] == sum(
            len(liker.campaign_ids) for liker in small_dataset.likers.values()
        )
        assert counts["terminations"] == sum(
            len(record.terminated_liker_ids)
            for record in small_dataset.campaigns.values()
        )

    def test_rows_written_accounting_matches_counts(self, store):
        assert store.rows_written == {
            table: n for table, n in store.counts().items() if n
        }

    def test_rows_written_metrics_counters(self, tmp_path, small_dataset):
        metrics = MetricsRegistry()
        with HoneypotStore.create(
            tmp_path / "counted.sqlite", metrics=metrics
        ) as store:
            store.ingest_dataset(small_dataset)
            for table, n in store.counts().items():
                if n:
                    assert metrics.counters_snapshot()[f"store.rows_written.{table}"] == n

    def test_rows_read_metrics_counters(self, tmp_path, small_dataset):
        metrics = MetricsRegistry()
        with HoneypotStore.create(
            tmp_path / "readback.sqlite", metrics=metrics
        ) as store:
            store.ingest_dataset(small_dataset)
            store.campaign_ids()
            assert metrics.counters_snapshot()["store.rows_read.campaigns"] == len(
                small_dataset.campaigns
            )

    def test_unknown_row_type_refuses(self, tmp_path):
        with HoneypotStore.create(tmp_path / "bad.sqlite") as store:
            with pytest.raises(StoreError, match="unknown ingest row type"):
                store.ingest_rows(iter([{"type": "likerish"}]))

    def test_ingest_jsonl_streams_the_same_rows(
        self, tmp_path, small_dataset
    ):
        source = tmp_path / "study.jsonl"
        small_dataset.to_jsonl(source)
        with HoneypotStore.create(tmp_path / "streamed.sqlite") as store:
            store.ingest_jsonl(source)
            out = tmp_path / "streamed.jsonl"
            store.to_jsonl(out)
        assert out.read_bytes() == source.read_bytes()


class TestRecordAccessors:
    def test_campaign_round_trips_exactly(self, store, small_dataset):
        for campaign_id in small_dataset.campaign_ids():
            assert store.campaign(campaign_id) == small_dataset.campaign(
                campaign_id
            )

    def test_campaign_order_is_insertion_order(self, store, small_dataset):
        assert store.campaign_ids() == small_dataset.campaign_ids()

    def test_unknown_campaign_refuses(self, store):
        with pytest.raises(StoreError, match="no campaign"):
            store.campaign("NOPE-1")

    def test_likers_round_trip_exactly(self, store, small_dataset):
        assert {liker.user_id: liker for liker in store.iter_likers()} == (
            small_dataset.likers
        )

    def test_baseline_round_trips_exactly(self, store, small_dataset):
        assert list(store.iter_baseline()) == small_dataset.baseline

    def test_globals_round_trip_with_key_order(self, store, small_dataset):
        gender, age, country = store.globals_report()
        assert list(gender.items()) == list(small_dataset.global_gender.items())
        assert list(age.items()) == list(small_dataset.global_age.items())
        assert list(country.items()) == list(small_dataset.global_country.items())

    def test_to_dataset_materialises_the_same_dataset(
        self, store, small_dataset
    ):
        rebuilt = store.to_dataset()
        assert rebuilt.campaigns == small_dataset.campaigns
        assert rebuilt.likers == small_dataset.likers
        assert rebuilt.baseline == small_dataset.baseline


class TestExport:
    def test_export_is_byte_identical_to_legacy(self, store, small_dataset, tmp_path):
        legacy = tmp_path / "legacy.jsonl"
        small_dataset.to_jsonl(legacy)
        exported = tmp_path / "store.jsonl"
        store.to_jsonl(exported)
        assert exported.read_bytes() == legacy.read_bytes()

    def test_export_survives_reopen(self, tmp_path, small_dataset):
        path = tmp_path / "reopened.sqlite"
        with HoneypotStore.create(path) as store:
            store.ingest_dataset(small_dataset)
        legacy = tmp_path / "legacy.jsonl"
        small_dataset.to_jsonl(legacy)
        with HoneypotStore.open(path) as store:
            exported = tmp_path / "reopened.jsonl"
            store.to_jsonl(exported)
        assert exported.read_bytes() == legacy.read_bytes()
