"""WAL replay and shard-merge ingest paths land exactly in the store."""

import dataclasses
import random

import pytest

from repro.ckpt.manager import CheckpointConfig
from repro.honeypot.study import HoneypotStudy, StudyConfig
from repro.shard.errors import ShardMergeError
from repro.shard.merge import merge_shards
from repro.store import HoneypotStore, StoreError, merge_shards_into_store
from repro.store.ingest import ingest_journal
from tests.shard.test_merge import build_completed, make_plan, state_for

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def checkpointed_run(tmp_path_factory):
    """A checkpointed small run: (config, dataset, journal path)."""
    directory = tmp_path_factory.mktemp("wal")
    config = dataclasses.replace(
        StudyConfig.small(), checkpoint=CheckpointConfig(directory=directory)
    )
    artifacts = HoneypotStudy(config).run()
    return config, artifacts.dataset, directory / "journal.jsonl"


class TestJournalIngest:
    def test_observations_and_terminations_are_exact(
        self, tmp_path, checkpointed_run
    ):
        config, dataset, journal = checkpointed_run
        with HoneypotStore.create(tmp_path / "wal.sqlite") as store:
            stats = ingest_journal(store, journal, config=config)
            assert stats["rows"] > 0 and not stats["torn"]
            for campaign_id in dataset.campaign_ids():
                want = dataset.campaign(campaign_id)
                got = store.campaign(campaign_id)
                assert got.observations == want.observations
                assert got.terminated_liker_ids == want.terminated_liker_ids
                assert got.total_likes == want.total_likes

    def test_campaign_order_follows_config_specs(
        self, tmp_path, checkpointed_run
    ):
        config, dataset, journal = checkpointed_run
        with HoneypotStore.create(tmp_path / "wal.sqlite") as store:
            ingest_journal(store, journal, config=config)
            assert store.campaign_ids() == dataset.campaign_ids()

    def test_likers_and_baseline_are_exact(self, tmp_path, checkpointed_run):
        config, dataset, journal = checkpointed_run
        with HoneypotStore.create(tmp_path / "wal.sqlite") as store:
            ingest_journal(store, journal, config=config)
            assert {
                liker.user_id: liker for liker in store.iter_likers()
            } == dataset.likers
            assert list(store.iter_baseline()) == dataset.baseline

    def test_missing_journal_is_empty_ingest(self, tmp_path):
        with HoneypotStore.create(tmp_path / "empty.sqlite") as store:
            stats = ingest_journal(store, tmp_path / "absent.jsonl")
            assert stats == {"records": 0, "rows": 0, "torn": 0}

    def test_unknown_record_type_refuses(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(
            '{"type": "journal-header", "schema": "repro.ckpt/journal@1", '
            '"seed": 1, "config_hash": "x"}\n'
            '{"type": "mystery"}\n'
        )
        with HoneypotStore.create(tmp_path / "bad.sqlite") as store:
            with pytest.raises(StoreError, match="unknown journal record"):
                ingest_journal(store, journal)


class TestShardMergeIngest:
    @pytest.fixture()
    def merged_pair(self, tmp_path):
        """(plan, completed-with-paths, reference merge) from fabricated shards."""
        rng = random.Random(20140312)
        plan = make_plan(4)
        pool = list(range(1_000_000, 1_000_300))
        completed = build_completed(plan, pool, rng)
        paths = {}
        for shard_id, (dataset, state) in completed.items():
            path = tmp_path / f"{shard_id}.jsonl"
            dataset.to_jsonl(path)
            paths[shard_id] = (path, state)
        return plan, completed, paths

    def test_store_merge_exports_the_in_memory_merge_bytes(
        self, tmp_path, merged_pair
    ):
        plan, completed, paths = merged_pair
        reference = tmp_path / "reference.jsonl"
        merge_shards(plan, completed).dataset.to_jsonl(reference)
        with HoneypotStore.create(tmp_path / "merged.sqlite") as store:
            written = merge_shards_into_store(plan, paths, store)
            assert written > 0
            exported = tmp_path / "merged.jsonl"
            store.to_jsonl(exported)
        assert exported.read_bytes() == reference.read_bytes()

    def test_missing_shards_merge_like_the_reference(
        self, tmp_path, merged_pair
    ):
        plan, completed, paths = merged_pair
        lost = plan[-1].shard_id
        completed = {k: v for k, v in completed.items() if k != lost}
        paths = {k: v for k, v in paths.items() if k != lost}
        reference = tmp_path / "reference.jsonl"
        merge_shards(plan, completed).dataset.to_jsonl(reference)
        with HoneypotStore.create(tmp_path / "partial.sqlite") as store:
            merge_shards_into_store(plan, paths, store)
            exported = tmp_path / "partial.jsonl"
            store.to_jsonl(exported)
        assert exported.read_bytes() == reference.read_bytes()

    def test_no_completed_shard_refuses(self, tmp_path):
        with HoneypotStore.create(tmp_path / "none.sqlite") as store:
            with pytest.raises(ShardMergeError, match="no shard completed"):
                merge_shards_into_store(make_plan(2), {}, store)

    def test_floor_disagreement_refuses(self, tmp_path, merged_pair):
        plan, _, paths = merged_pair
        shard_id = plan[1].shard_id
        path, _ = paths[shard_id]
        paths[shard_id] = (path, state_for(plan[1], None, floor=999))
        with HoneypotStore.create(tmp_path / "floors.sqlite") as store:
            with pytest.raises(ShardMergeError, match="dynamic-id floor"):
                merge_shards_into_store(plan, paths, store)

    def test_occupied_store_refuses(self, tmp_path, merged_pair, small_dataset):
        plan, _, paths = merged_pair
        with HoneypotStore.create(tmp_path / "occupied.sqlite") as store:
            store.ingest_dataset(small_dataset)
            with pytest.raises(StoreError, match="not empty"):
                merge_shards_into_store(plan, paths, store)
