"""Store health checks and WAL-based repair (verify / repair_from_journal)."""

import dataclasses

import pytest

from repro.ckpt.manager import CheckpointConfig
from repro.honeypot.study import HoneypotStudy, StudyConfig
from repro.store import HoneypotStore, StoreError, repair_from_journal
from repro.store.ingest import ingest_journal
from repro.store.schema import META_ROWCOUNTS_KEY, META_SCHEMA_KEY

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def checkpointed_run(tmp_path_factory):
    """A checkpointed small run: (config, dataset, journal path)."""
    directory = tmp_path_factory.mktemp("wal")
    config = dataclasses.replace(
        StudyConfig.small(), checkpoint=CheckpointConfig(directory=directory)
    )
    artifacts = HoneypotStudy(config).run()
    return config, artifacts.dataset, directory / "journal.jsonl"


class TestVerify:
    def test_healthy_store_has_no_problems(self, tmp_path, small_dataset):
        with HoneypotStore.create(tmp_path / "s.sqlite") as store:
            store.ingest_dataset(small_dataset)
            assert store.verify() == []

    def test_fresh_empty_store_is_healthy(self, tmp_path):
        with HoneypotStore.create(tmp_path / "s.sqlite") as store:
            assert store.verify() == []

    def test_rows_lost_behind_the_counts_are_reported(
        self, tmp_path, small_dataset
    ):
        with HoneypotStore.create(tmp_path / "s.sqlite") as store:
            store.ingest_dataset(small_dataset)
            store._db.execute(
                "DELETE FROM likers WHERE rowid IN "
                "(SELECT rowid FROM likers LIMIT 5)"
            )
            store._db.commit()
            problems = store.verify()
        assert len(problems) == 1
        assert "table likers holds" in problems[0]
        assert "meta records" in problems[0]

    def test_missing_rowcounts_meta_reads_as_torn_ingest(
        self, tmp_path, small_dataset
    ):
        with HoneypotStore.create(tmp_path / "s.sqlite") as store:
            store.ingest_dataset(small_dataset)
            store._db.execute(
                "DELETE FROM meta WHERE key = ?", (META_ROWCOUNTS_KEY,)
            )
            store._db.commit()
            problems = store.verify()
        assert problems == ["no rowcounts record in meta (torn ingest?)"]

    def test_foreign_schema_tag_is_reported_not_raised(self, tmp_path):
        with HoneypotStore.create(tmp_path / "s.sqlite") as store:
            store._db.execute(
                "UPDATE meta SET value = ? WHERE key = ?",
                ("repro.store/schema@99", META_SCHEMA_KEY),
            )
            store._db.commit()
            problems = store.verify()
        assert any("schema@99" in p for p in problems)

    def test_broken_query_degrades_to_a_problem_report(
        self, tmp_path, small_dataset
    ):
        with HoneypotStore.create(tmp_path / "s.sqlite") as store:
            store.ingest_dataset(small_dataset)
            store._db.execute("DROP TABLE baseline")
            store._db.commit()
            problems = store.verify()
        assert any("verification query failed" in p for p in problems)


class TestRepairFromJournal:
    def test_rebuilds_a_damaged_store_in_place(
        self, tmp_path, checkpointed_run
    ):
        config, dataset, journal = checkpointed_run
        path = tmp_path / "study.sqlite"
        path.write_bytes(b"not a database at all")  # the damaged original
        summary = repair_from_journal(path, journal, config=config)
        assert summary["rows"] > 0 and not summary["torn"]
        with HoneypotStore.open(path) as store:
            assert store.verify() == []
            assert store.campaign_ids() == dataset.campaign_ids()
        assert not path.with_name(path.name + ".repair").exists()

    def test_repair_matches_a_direct_journal_ingest(
        self, tmp_path, checkpointed_run
    ):
        config, _, journal = checkpointed_run
        repaired = tmp_path / "repaired.sqlite"
        repaired.write_bytes(b"garbage")
        repair_from_journal(repaired, journal, config=config)
        with HoneypotStore.create(tmp_path / "direct.sqlite") as direct:
            ingest_journal(direct, journal, config=config)
            direct_counts = direct.counts()
            direct_rows = list(direct.iter_rows())
        with HoneypotStore.open(repaired) as store:
            assert store.counts() == direct_counts
            assert list(store.iter_rows()) == direct_rows

    def test_failed_repair_leaves_the_original_untouched(self, tmp_path):
        path = tmp_path / "study.sqlite"
        path.write_bytes(b"damaged original")
        bad_journal = tmp_path / "journal.jsonl"
        bad_journal.write_text(
            '{"type": "journal-header", "schema": "repro.ckpt/journal@1", '
            '"seed": 1, "config_hash": "x"}\n'
            '{"type": "mystery"}\n'
        )
        with pytest.raises(StoreError, match="unknown journal record"):
            repair_from_journal(path, bad_journal)
        assert path.read_bytes() == b"damaged original"
        assert not path.with_name(path.name + ".repair").exists()

    def test_open_sweeps_a_stale_repair_orphan(self, tmp_path, small_dataset):
        path = tmp_path / "study.sqlite"
        with HoneypotStore.create(path) as store:
            store.ingest_dataset(small_dataset)
        orphan = path.with_name(path.name + ".repair")
        orphan.write_bytes(b"half-built")
        with HoneypotStore.open(path) as store:
            assert store.verify() == []
        assert not orphan.exists()
