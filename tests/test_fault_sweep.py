"""The storage-fault sweep: every registered failpoint, two outcomes only.

For each name in the failpoint catalog (:mod:`repro.failpoints`) this
sweep injects a fault at that chokepoint mid-run and then drives the
documented recovery path.  Exactly two endings are acceptable:

1. **Byte-identical recovery** — the process is SIGKILLed (or torn) and
   a ``--resume`` / restart converges on the same final dataset bytes as
   an uninterrupted run (pinned by ``GOLDEN`` / a per-argset reference).
2. **A named refusal** — the run exits through one of the documented
   error channels (exit 2 store corruption, 3 checkpoint refusal,
   5 unrecoverable shards, 6 i/o error, 1 injected ``raise``) with a
   prefixed one-line message on stderr.

Anything else — a silent truncation, a raw traceback exit, a hang (the
subprocess timeout) — fails the sweep.  ``test_sweep_covers_every_
registered_failpoint`` pins the scenario table to the catalog, so a new
``register()`` without a sweep scenario fails tier-1.
"""

import hashlib
import json
import os
import random  # repro-lint: allow-DET002 seeded fixture data, no study rng
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import failpoints
from repro.store import HoneypotStore, StoreError, merge_shards_into_store
from tests.shard.test_merge import build_completed, make_plan

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

#: sha256 of the dataset a clean SMALL run exports (any checkpoint/resume
#: history must converge on these bytes).
GOLDEN = "9b9aa9804219b6927d750cca038fd30f1786053542694fd593979bbb404ff04f"
SMALL = ["--scale", "0.02", "--seed", "11", "--population", "250"]
#: Sharded variant (3 campaigns keeps the worker fleet small and fast).
SHARD = SMALL + ["--jobs", "2", "--campaigns", "3"]

#: Injection envs scrubbed from every subprocess so only the scenario's
#: own spec is armed (resume legs run with nothing armed at all).
INJECTION_ENVS = (
    failpoints.ENV_VAR,
    failpoints.CRASH_AFTER_ENV,
    failpoints.STALL_AFTER_ENV,
    failpoints.STALL_SECONDS_ENV,
    "REPRO_SHARD_TARGET",
    "REPRO_SHARD_HANG",
    "REPRO_SHARD_POISON",
)


def cli(cwd: Path, args, env_extra=None, timeout=240):
    """Run ``repro-study <args>`` in ``cwd``; the timeout is the no-hang gate."""
    env = {k: v for k, v in os.environ.items() if k not in INJECTION_ENVS}
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_SHARD_HEARTBEAT_TIMEOUT"] = "3"
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def assert_killed(proc, spec: str) -> None:
    assert proc.returncode == -signal.SIGKILL, (
        f"expected SIGKILL from {spec}, got rc={proc.returncode}\n"
        f"{proc.stderr}"
    )
    assert f"failpoint fired: {spec}" in proc.stderr, proc.stderr


def assert_named_error(proc, code: int, prefix: str) -> None:
    assert proc.returncode == code, (
        f"expected exit {code} ({prefix!r}), got rc={proc.returncode}\n"
        f"{proc.stderr}"
    )
    assert prefix in proc.stderr, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr


def crash_then_resume(tmp: Path, spec: str) -> None:
    """Outcome 1: SIGKILL at the failpoint, resume byte-identical."""
    crash = cli(tmp, [
        "run", *SMALL, "--out", "out.jsonl",
        "--checkpoint-dir", "ck", "--failpoint", spec,
    ])
    assert_killed(crash, spec)
    resume = cli(tmp, ["run", *SMALL, "--out", "out.jsonl", "--resume", "ck"])
    assert resume.returncode in (0, 1), resume.stderr
    assert "injected" not in resume.stderr
    assert sha256(tmp / "out.jsonl") == GOLDEN


def crash_for_resume_legs(tmp: Path) -> None:
    """Seed a crashed run whose manifest lists ≥2 durable snapshots.

    Manifest writes land at: 1 fresh-start (empty), 2 +build snapshot,
    3 +collect snapshot, so killing at hit 4 leaves a manifest listing
    two snapshots — a resume must load both, and only the *latest* one
    is allowed to be bad (the torn-write fallback); faults on the older
    snapshot must refuse.
    """
    crash = cli(tmp, [
        "run", *SMALL, "--out", "out.jsonl",
        "--checkpoint-dir", "ck", "--failpoint", "ckpt.manifest.write=kill@4",
    ])
    assert_killed(crash, "ckpt.manifest.write=kill@4")


class Refs:
    """Lazily computed clean-run references shared across the sweep."""

    def __init__(self, factory) -> None:
        self._factory = factory
        self._shard_hash = None

    def shard_hash(self) -> str:
        if self._shard_hash is None:
            tmp = self._factory.mktemp("shard-ref")
            clean = cli(tmp, ["run", *SHARD, "--out", "out.jsonl"])
            assert clean.returncode in (0, 1), clean.stderr
            self._shard_hash = sha256(tmp / "out.jsonl")
        return self._shard_hash


@pytest.fixture(scope="session")
def refs(tmp_path_factory) -> Refs:
    return Refs(tmp_path_factory)


# --------------------------------------------------------------------------- #
# Scenarios — one per registered failpoint
# --------------------------------------------------------------------------- #


def scenario_durable_write_data(tmp, refs):
    crash_then_resume(tmp, "durable.write.data=torn@5")


def scenario_durable_fsync_file(tmp, refs):
    crash_then_resume(tmp, "durable.fsync.file=kill@4")


def scenario_durable_rename(tmp, refs):
    # The torn rename leaves a ``*.tmp`` orphan; resume must sweep it.
    spec = "durable.rename=torn@3"
    crash = cli(tmp, [
        "run", *SMALL, "--out", "out.jsonl",
        "--checkpoint-dir", "ck", "--failpoint", spec,
    ])
    assert_killed(crash, spec)
    assert list((tmp / "ck").glob("*.tmp")), "torn rename left no orphan"
    resume = cli(tmp, ["run", *SMALL, "--out", "out.jsonl", "--resume", "ck"])
    assert resume.returncode in (0, 1), resume.stderr
    assert not list((tmp / "ck").glob("*.tmp")), "resume left the orphan"
    assert sha256(tmp / "out.jsonl") == GOLDEN


def scenario_durable_fsync_dir(tmp, refs):
    crash_then_resume(tmp, "durable.fsync.dir=kill@2")


def scenario_ckpt_journal_record(tmp, refs):
    # Outcome 2 first: the disk fills mid-journal — a named refusal.
    full = cli(tmp, [
        "run", *SMALL, "--out", "out.jsonl", "--checkpoint-dir", "ckfull",
        "--failpoint", "ckpt.journal.record=errno:ENOSPC@20",
    ])
    assert_named_error(full, 3, "checkpoint error")
    assert not (tmp / "out.jsonl").exists(), "refused run must not export"
    # Outcome 1: power loss mid-journal, resume byte-identical.
    crash_then_resume(tmp, "ckpt.journal.record=kill@37")


def scenario_ckpt_snapshot_write(tmp, refs):
    full = cli(tmp, [
        "run", *SMALL, "--out", "out.jsonl", "--checkpoint-dir", "ckfull",
        "--failpoint", "ckpt.snapshot.write=errno:ENOSPC@1",
    ])
    assert_named_error(full, 3, "checkpoint error")
    crash_then_resume(tmp, "ckpt.snapshot.write=kill@2")


def scenario_ckpt_snapshot_corrupt(tmp, refs):
    # The latest manifest-listed snapshot is truncated before the kill;
    # resume must fall back to the previous snapshot + WAL replay.
    crash_then_resume(tmp, "ckpt.snapshot.corrupt=torn@2")


def scenario_ckpt_snapshot_load(tmp, refs):
    crash_for_resume_legs(tmp)
    broken = cli(
        tmp,
        ["run", *SMALL, "--out", "out.jsonl", "--resume", "ck"],
        env_extra={failpoints.ENV_VAR: "ckpt.snapshot.load=errno:EIO@1"},
    )
    assert_named_error(broken, 3, "checkpoint error")
    resume = cli(tmp, ["run", *SMALL, "--out", "out.jsonl", "--resume", "ck"])
    assert resume.returncode in (0, 1), resume.stderr
    assert sha256(tmp / "out.jsonl") == GOLDEN


def scenario_ckpt_manifest_write(tmp, refs):
    crash_then_resume(tmp, "ckpt.manifest.write=kill@3")


def scenario_ckpt_manager_resume(tmp, refs):
    crash_for_resume_legs(tmp)
    broken = cli(
        tmp,
        ["run", *SMALL, "--out", "out.jsonl", "--resume", "ck"],
        env_extra={failpoints.ENV_VAR: "ckpt.manager.resume=errno:EIO@1"},
    )
    assert_named_error(broken, 6, "i/o error")
    resume = cli(tmp, ["run", *SMALL, "--out", "out.jsonl", "--resume", "ck"])
    assert resume.returncode in (0, 1), resume.stderr
    assert sha256(tmp / "out.jsonl") == GOLDEN


def scenario_store_open(tmp, refs):
    seed = cli(tmp, [
        "run", *SMALL, "--out", "out.jsonl", "--store", "study.sqlite",
    ])
    assert seed.returncode in (0, 1), seed.stderr
    broken = cli(
        tmp,
        ["query", "study.sqlite", "verify"],
        env_extra={failpoints.ENV_VAR: "store.open=errno:EIO@1"},
    )
    assert_named_error(broken, 2, "store error")
    healthy = cli(tmp, ["query", "study.sqlite", "verify"])
    assert healthy.returncode == 0, healthy.stderr
    assert "ok" in healthy.stdout


def scenario_store_ingest_batch(tmp, refs):
    # The study itself completes and exports; only the store leg refuses.
    broken = cli(tmp, [
        "run", *SMALL, "--out", "out.jsonl", "--store", "study.sqlite",
        "--failpoint", "store.ingest.batch=errno:ENOSPC@1",
    ])
    assert_named_error(broken, 2, "store error")
    assert sha256(tmp / "out.jsonl") == GOLDEN  # dataset leg unharmed


def scenario_store_export_rows(tmp, refs):
    # In-process: the export stream dies on EIO, is disarmed, and then
    # produces the identical bytes the dataset would.
    failpoints.reset()
    rng = random.Random(20140312)
    plan = make_plan(2)
    completed = build_completed(plan, list(range(1_000_000, 1_000_200)), rng)
    dataset = completed[plan[0].shard_id][0]
    reference = tmp / "reference.jsonl"
    dataset.to_jsonl(reference)
    with HoneypotStore.create(tmp / "s.sqlite") as store:
        store.ingest_dataset(dataset)
        failpoints.configure("store.export.rows=errno:EIO@1")
        with pytest.raises(OSError):
            store.to_jsonl(tmp / "broken.jsonl")
        failpoints.reset()
        store.to_jsonl(tmp / "export.jsonl")
    assert (tmp / "export.jsonl").read_bytes() == reference.read_bytes()


def scenario_store_merge_shard(tmp, refs):
    # In-process: a disk fault mid shard-merge is a named StoreError and
    # rolls the torn shard back.
    failpoints.reset()
    rng = random.Random(20140312)
    plan = make_plan(3)
    completed = build_completed(plan, list(range(1_000_000, 1_000_300)), rng)
    paths = {}
    for shard_id, (dataset, state) in completed.items():
        path = tmp / f"{shard_id}.jsonl"
        dataset.to_jsonl(path)
        paths[shard_id] = (path, state)
    with HoneypotStore.create(tmp / "m.sqlite") as store:
        failpoints.configure("store.merge.shard=errno:EIO@2")
        with pytest.raises(StoreError, match="merging shard"):
            merge_shards_into_store(plan, paths, store)
        failpoints.reset()


def scenario_shard_worker_hang(tmp, refs):
    spec = "shard.worker.hang=hang@1"
    run = cli(tmp, ["run", *SHARD, "--out", "out.jsonl", "--failpoint", spec])
    assert run.returncode in (0, 1), run.stderr
    assert f"failpoint fired: {spec}" in run.stderr, run.stderr
    assert sha256(tmp / "out.jsonl") == refs.shard_hash()


def scenario_shard_worker_poison(tmp, refs):
    spec = "shard.worker.poison=raise:injected poison@1"
    run = cli(tmp, [
        "run", *SHARD, "--shard-retry", "0",
        "--out", "out.jsonl", "--failpoint", spec,
    ])
    assert_named_error(run, 5, "unrecoverable shard failure")
    assert "injected poison" in run.stderr
    assert not (tmp / "out.jsonl").exists(), "refused run must not export"


def scenario_shard_worker_heartbeat(tmp, refs):
    # Hit 1 is the synchronous start beat; hit 2 is the first timer
    # beat (~0.2s in), which short-lived small-scale workers still reach.
    spec = "shard.worker.heartbeat=kill@2"
    run = cli(tmp, ["run", *SHARD, "--out", "out.jsonl", "--failpoint", spec])
    assert run.returncode in (0, 1), run.stderr
    assert f"failpoint fired: {spec}" in run.stderr, run.stderr
    assert sha256(tmp / "out.jsonl") == refs.shard_hash()


def scenario_shard_worker_state(tmp, refs):
    spec = "shard.worker.state=kill@1"
    run = cli(tmp, ["run", *SHARD, "--out", "out.jsonl", "--failpoint", spec])
    assert run.returncode in (0, 1), run.stderr
    assert f"failpoint fired: {spec}" in run.stderr, run.stderr
    assert sha256(tmp / "out.jsonl") == refs.shard_hash()


def scenario_shard_worker_done(tmp, refs):
    spec = "shard.worker.done=kill@1"
    run = cli(tmp, ["run", *SHARD, "--out", "out.jsonl", "--failpoint", spec])
    assert run.returncode in (0, 1), run.stderr
    assert f"failpoint fired: {spec}" in run.stderr, run.stderr
    assert sha256(tmp / "out.jsonl") == refs.shard_hash()


def scenario_shard_supervisor_restart(tmp, refs):
    # The supervisor itself dies between noticing a worker crash and
    # relaunching it; a supervisor-level --resume picks the run back up
    # from the per-shard WALs.
    crash = cli(tmp, [
        "run", *SHARD, "--out", "out.jsonl", "--checkpoint-dir", "cks",
        "--failpoint", "shard.worker.state=kill@1",
        "--failpoint", "shard.supervisor.restart=kill@1",
    ])
    assert_killed(crash, "shard.supervisor.restart=kill@1")
    resume = cli(tmp, ["run", *SHARD, "--out", "out.jsonl", "--resume", "cks"])
    assert resume.returncode in (0, 1), resume.stderr
    assert sha256(tmp / "out.jsonl") == refs.shard_hash()


SCENARIOS = {
    "durable.write.data": scenario_durable_write_data,
    "durable.fsync.file": scenario_durable_fsync_file,
    "durable.rename": scenario_durable_rename,
    "durable.fsync.dir": scenario_durable_fsync_dir,
    "ckpt.journal.record": scenario_ckpt_journal_record,
    "ckpt.snapshot.write": scenario_ckpt_snapshot_write,
    "ckpt.snapshot.corrupt": scenario_ckpt_snapshot_corrupt,
    "ckpt.snapshot.load": scenario_ckpt_snapshot_load,
    "ckpt.manifest.write": scenario_ckpt_manifest_write,
    "ckpt.manager.resume": scenario_ckpt_manager_resume,
    "store.open": scenario_store_open,
    "store.ingest.batch": scenario_store_ingest_batch,
    "store.export.rows": scenario_store_export_rows,
    "store.merge.shard": scenario_store_merge_shard,
    "shard.worker.hang": scenario_shard_worker_hang,
    "shard.worker.poison": scenario_shard_worker_poison,
    "shard.worker.heartbeat": scenario_shard_worker_heartbeat,
    "shard.worker.state": scenario_shard_worker_state,
    "shard.worker.done": scenario_shard_worker_done,
    "shard.supervisor.restart": scenario_shard_supervisor_restart,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_failpoint_scenario(name, tmp_path, refs):
    SCENARIOS[name](tmp_path, refs)


def test_sweep_covers_every_registered_failpoint():
    assert sorted(SCENARIOS) == failpoints.all_failpoints(), (
        "every registered failpoint needs a sweep scenario (and every "
        "scenario a registration)"
    )


# --------------------------------------------------------------------------- #
# The disabled framework is invisible
# --------------------------------------------------------------------------- #


class TestZeroFailpointIdentity:
    def test_plain_run_matches_the_golden_bytes(self, tmp_path):
        run = cli(tmp_path, ["run", *SMALL, "--out", "out.jsonl"])
        assert run.returncode in (0, 1), run.stderr
        assert sha256(tmp_path / "out.jsonl") == GOLDEN

    def test_empty_env_spec_is_a_no_op(self, tmp_path):
        run = cli(
            tmp_path,
            ["run", *SMALL, "--out", "out.jsonl"],
            env_extra={failpoints.ENV_VAR: ""},
        )
        assert run.returncode in (0, 1), run.stderr
        assert sha256(tmp_path / "out.jsonl") == GOLDEN

    def test_count_coverage_mode_does_not_change_the_bytes(self, tmp_path):
        # ``*=count`` arms every failpoint in pure-counting mode: hits are
        # recorded, nothing fires, and the dataset is still byte-golden.
        run = cli(
            tmp_path,
            ["run", *SMALL, "--out", "out.jsonl", "--checkpoint-dir", "ck"],
            env_extra={failpoints.ENV_VAR: "*=count"},
        )
        assert run.returncode in (0, 1), run.stderr
        assert sha256(tmp_path / "out.jsonl") == GOLDEN


class TestResumeManifestDeterminism:
    def test_deterministic_sections_survive_crash_resume(self, tmp_path):
        clean = cli(tmp_path, [
            "run", *SMALL, "--out", "clean.jsonl", "--metrics", "clean.json",
        ])
        assert clean.returncode in (0, 1), clean.stderr
        # --metrics rides on both legs: metrics counters are part of the
        # barrier state, and a run checkpointed without them refuses to
        # resume with them (a named divergence, tested elsewhere).
        crash = cli(tmp_path, [
            "run", *SMALL, "--out", "out.jsonl", "--checkpoint-dir", "ck",
            "--metrics", "crash.json",
            "--failpoint", "ckpt.journal.record=kill@400",
        ])
        assert_killed(crash, "ckpt.journal.record=kill@400")
        resume = cli(tmp_path, [
            "run", *SMALL, "--out", "out.jsonl", "--resume", "ck",
            "--metrics", "resumed.json",
        ])
        assert resume.returncode in (0, 1), resume.stderr
        clean_manifest = json.loads((tmp_path / "clean.json").read_text())
        resumed = json.loads((tmp_path / "resumed.json").read_text())
        for section in ("config_hash", "seed", "counters", "gauges", "dataset"):
            assert resumed[section] == clean_manifest[section], section

    def test_toggling_metrics_across_resume_is_a_named_refusal(self, tmp_path):
        # Counters live in the barrier state, so resuming a no-metrics
        # checkpoint with --metrics cannot be made deterministic; the
        # manager refuses by name instead of silently diverging.
        crash = cli(tmp_path, [
            "run", *SMALL, "--out", "out.jsonl", "--checkpoint-dir", "ck",
            "--failpoint", "ckpt.journal.record=kill@400",
        ])
        assert_killed(crash, "ckpt.journal.record=kill@400")
        resume = cli(tmp_path, [
            "run", *SMALL, "--out", "out.jsonl", "--resume", "ck",
            "--metrics", "resumed.json",
        ])
        assert_named_error(resume, 3, "checkpoint error")
        assert "diverged" in resume.stderr
