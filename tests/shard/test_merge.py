"""Merge unit tests plus the permutation-invariance property.

The property under test is the heart of the sharded determinism
contract: the merged dataset is a function of the *plan* and the
per-shard outputs, never of completion order.  The tests fabricate
per-shard datasets directly (no simulation) so the invariants are
exercised against adversarial shapes — shared organic likers, colliding
raw dynamic ids, conflicting identities — that a healthy run would
rarely produce.
"""

import json
import random

import pytest

from repro.honeypot.storage import (
    BaselineRecord,
    CampaignRecord,
    HoneypotDataset,
    LikeObservation,
    LikerRecord,
)
from repro.shard.errors import ShardMergeError
from repro.shard.merge import STRIDE, merge_shards
from repro.shard.plan import ShardSpec

FLOOR = 1_000_300


def make_plan(count):
    return [
        ShardSpec(
            index=i,
            shard_id=f"s{i:02d}-C{i}",
            campaign_ids=(f"C{i}",),
            primary=(i == 0),
        )
        for i in range(count)
    ]


def liker(user_id, campaign_id, friends=(), terminated=False):
    """An organic-or-dynamic liker whose identity is a function of its id."""
    return LikerRecord(
        user_id=user_id,
        gender="F" if user_id % 2 else "M",
        age_bracket="18-24" if user_id % 3 else "25-34",
        country=("IN", "US", "TR")[user_id % 3],
        friend_list_public=bool(user_id % 2),
        declared_friend_count=user_id % 50,
        visible_friend_ids=list(friends),
        liked_page_ids=[9_000_000 + user_id % 7],
        declared_like_count=user_id % 900,
        campaign_ids=[campaign_id],
        terminated=terminated,
    )


def shard_dataset(spec, organic_ids, dynamic_count, with_globals=False):
    """One shard's output: its campaign liked by organic + dynamic users."""
    campaign_id = spec.campaign_ids[0]
    dynamic_ids = [FLOOR + i for i in range(dynamic_count)]
    liker_ids = list(organic_ids) + dynamic_ids
    dataset = HoneypotDataset()
    dataset.campaigns[campaign_id] = CampaignRecord(
        campaign_id=campaign_id,
        provider="Test.com",
        kind="farm",
        location_label="Worldwide",
        budget_label="$10",
        duration_days=3.0,
        monitored_days=8.0,
        page_id=9_000_000 + spec.index,
        total_likes=len(liker_ids),
        observations=[
            LikeObservation(observed_at=60 * i, user_id=uid)
            for i, uid in enumerate(liker_ids)
        ],
        terminated_liker_ids=[uid for uid in dynamic_ids if uid % 5 == 0],
    )
    for uid in liker_ids:
        dataset.likers[uid] = liker(
            uid,
            campaign_id,
            friends=[i for i in organic_ids if i != uid][:3],
            terminated=uid >= FLOOR and uid % 5 == 0,
        )
    if with_globals:
        dataset.baseline = [
            BaselineRecord(user_id=uid, declared_like_count=uid % 40)
            for uid in list(organic_ids)[:4]
        ]
        dataset.global_gender = {"M": 0.52, "F": 0.48}
        dataset.global_age = {"18-24": 0.4, "25-34": 0.6}
        dataset.global_country = {"IN": 0.7, "US": 0.3}
    return dataset


def state_for(spec, dataset, floor=FLOOR):
    return {
        "schema": "repro.shard/state@1",
        "shard": spec.shard_id,
        "virtual_minutes": 10_000 + spec.index,
        "dynamic_id_floor": floor,
        "counters": {"crawl.requests": 100 + spec.index},
        "gauges": {"crawl.depth": float(spec.index)},
        "checkpoint": {"resumed": spec.index == 1, "snapshots_written": 4},
    }


def build_completed(plan, organic_pool, rng):
    completed = {}
    for spec in plan:
        organic = sorted(rng.sample(organic_pool, 5))
        dataset = shard_dataset(
            spec, organic, dynamic_count=rng.randint(2, 9),
            with_globals=spec.primary,
        )
        completed[spec.shard_id] = (dataset, state_for(spec, dataset))
    return completed


def merged_bytes(plan, completed, tmp_path, tag):
    merged = merge_shards(plan, completed)
    out = tmp_path / f"{tag}.jsonl"
    merged.dataset.to_jsonl(out)
    sections = json.dumps(
        {
            "counters": merged.counters,
            "gauges": merged.gauges,
            "virtual_minutes": merged.virtual_minutes,
            "shards": merged.shards_section,
            "degraded": merged.degraded_section,
        },
        sort_keys=True,
    )
    return out.read_bytes(), sections


class TestPermutationInvariance:
    @pytest.mark.parametrize("trial", range(5))
    def test_completion_order_cannot_change_a_byte(self, tmp_path, trial):
        rng = random.Random(0xBEEF + trial)
        plan = make_plan(4)
        organic_pool = range(1_000_000, 1_000_040)
        completed = build_completed(plan, organic_pool, rng)
        reference, ref_sections = merged_bytes(
            plan, completed, tmp_path, f"ref{trial}"
        )
        for shuffle in range(3):
            order = list(completed)
            rng.shuffle(order)
            permuted = {sid: completed[sid] for sid in order}
            got, got_sections = merged_bytes(
                plan, permuted, tmp_path, f"t{trial}-{shuffle}"
            )
            assert got == reference
            assert got_sections == ref_sections


class TestIdRelocation:
    def test_organic_ids_keep_identity_and_dynamic_ids_relocate(self, tmp_path):
        plan = make_plan(3)
        organic = [1_000_001, 1_000_002]
        completed = {
            spec.shard_id: (
                shard_dataset(spec, organic, 3, with_globals=spec.primary),
                state_for(spec, shard_dataset(spec, organic, 3)),
            )
            for spec in plan
        }
        merged = merge_shards(plan, completed)
        for uid in organic:
            assert uid in merged.dataset.likers
        # Shard 0's dynamic ids are identity-mapped; shard k's shift by k*STRIDE.
        for spec in plan:
            base = FLOOR + spec.index * STRIDE
            record = merged.dataset.campaigns[spec.campaign_ids[0]]
            dynamic = [u for u in record.liker_ids if u >= FLOOR]
            assert dynamic == [base, base + 1, base + 2]
        # No two shards' dynamic likers collide post-relocation.
        dynamic_ids = [u for u in merged.dataset.likers if u >= FLOOR]
        assert len(dynamic_ids) == len(set(dynamic_ids)) == 9

    def test_shared_organic_liker_accumulates_campaigns(self):
        plan = make_plan(2)
        organic = [1_000_010]
        completed = {
            spec.shard_id: (
                shard_dataset(spec, organic, 1, with_globals=spec.primary),
                state_for(spec, None),
            )
            for spec in plan
        }
        merged = merge_shards(plan, completed)
        assert merged.dataset.likers[1_000_010].campaign_ids == ["C0", "C1"]

    def test_friend_lists_and_terminations_are_remapped(self):
        plan = make_plan(2)
        spec = plan[1]
        organic = [1_000_004, 1_000_008]
        completed = {
            plan[0].shard_id: (
                shard_dataset(plan[0], organic, 1, with_globals=True),
                state_for(plan[0], None),
            ),
            spec.shard_id: (
                shard_dataset(spec, organic, 6),
                state_for(spec, None),
            ),
        }
        merged = merge_shards(plan, completed)
        record = merged.dataset.campaigns["C1"]
        base = FLOOR + STRIDE
        assert record.terminated_liker_ids == [base + 0, base + 5]
        # Friend ids below the floor are untouched.
        for uid in record.liker_ids:
            friends = merged.dataset.likers[uid].visible_friend_ids
            assert all(f < FLOOR for f in friends)

    def test_baseline_comes_from_primary_with_identity_ids(self):
        plan = make_plan(2)
        organic = [1_000_004, 1_000_008, 1_000_012, 1_000_016]
        completed = {
            spec.shard_id: (
                shard_dataset(spec, organic, 2, with_globals=spec.primary),
                state_for(spec, None),
            )
            for spec in plan
        }
        merged = merge_shards(plan, completed)
        assert [b.user_id for b in merged.dataset.baseline] == organic
        assert merged.dataset.global_country == {"IN": 0.7, "US": 0.3}


class TestMergeRefusals:
    def test_floor_disagreement_refuses(self):
        plan = make_plan(2)
        completed = {
            plan[0].shard_id: (
                shard_dataset(plan[0], [1_000_001], 1, with_globals=True),
                state_for(plan[0], None),
            ),
            plan[1].shard_id: (
                shard_dataset(plan[1], [1_000_001], 1),
                state_for(plan[1], None, floor=FLOOR + 7),
            ),
        }
        with pytest.raises(ShardMergeError, match="dynamic-id floor"):
            merge_shards(plan, completed)

    def test_identity_conflict_refuses(self):
        plan = make_plan(2)
        a = shard_dataset(plan[0], [1_000_002], 1, with_globals=True)
        b = shard_dataset(plan[1], [1_000_002], 1)
        b.likers[1_000_002].country = "FR"  # diverged world
        completed = {
            plan[0].shard_id: (a, state_for(plan[0], None)),
            plan[1].shard_id: (b, state_for(plan[1], None)),
        }
        with pytest.raises(ShardMergeError, match="conflicting 'country'"):
            merge_shards(plan, completed)

    def test_missing_primary_refuses(self):
        plan = make_plan(2)
        completed = {
            plan[1].shard_id: (
                shard_dataset(plan[1], [1_000_002], 1),
                state_for(plan[1], None),
            ),
        }
        with pytest.raises(ShardMergeError, match="primary"):
            merge_shards(plan, completed, quarantined=[plan[0]])

    def test_no_completed_shards_refuses(self):
        plan = make_plan(2)
        with pytest.raises(ShardMergeError, match="no shard completed"):
            merge_shards(plan, {}, quarantined=plan)

    def test_missing_campaign_refuses(self):
        plan = make_plan(1)
        dataset = HoneypotDataset()  # completed but empty: no campaign record
        completed = {plan[0].shard_id: (dataset, state_for(plan[0], None))}
        with pytest.raises(ShardMergeError, match="without its campaign"):
            merge_shards(plan, completed)

    def test_stride_overflow_refuses(self):
        plan = make_plan(2)
        b = shard_dataset(plan[1], [], 1)
        huge = FLOOR + STRIDE  # one past the relocation range
        record = b.campaigns["C1"]
        record.observations.append(LikeObservation(observed_at=9, user_id=huge))
        b.likers[huge] = liker(huge, "C1")
        completed = {
            plan[0].shard_id: (
                shard_dataset(plan[0], [1_000_001], 1, with_globals=True),
                state_for(plan[0], None),
            ),
            plan[1].shard_id: (b, state_for(plan[1], None)),
        }
        with pytest.raises(ShardMergeError, match="stride"):
            merge_shards(plan, completed)


class TestMergedMetrics:
    def test_counters_namespace_and_sum(self):
        plan = make_plan(3)
        completed = {
            spec.shard_id: (
                shard_dataset(spec, [1_000_001], 1, with_globals=spec.primary),
                state_for(spec, None),
            )
            for spec in plan
        }
        merged = merge_shards(plan, completed)
        assert merged.counters["crawl.requests"] == 100 + 101 + 102
        for spec in plan:
            key = f"shard.{spec.shard_id}.crawl.requests"
            assert merged.counters[key] == 100 + spec.index
        assert merged.gauges["sim.virtual_minutes"] == 10_002
        assert merged.virtual_minutes == 10_002
        assert merged.checkpoint["resumed"] is True
        assert merged.checkpoint["snapshots_written"] == 12

    def test_degraded_section_lists_quarantined_in_plan_order(self):
        plan = make_plan(3)
        completed = {
            spec.shard_id: (
                shard_dataset(spec, [1_000_001], 1, with_globals=spec.primary),
                state_for(spec, None),
            )
            for spec in plan[:1]
        }
        merged = merge_shards(
            plan, completed, quarantined=[plan[2], plan[1]]
        )
        assert merged.degraded_section == {
            "quarantined": ["s01-C1", "s02-C2"],
            "campaigns_lost": ["C1", "C2"],
        }
        statuses = [p["status"] for p in merged.shards_section["plan"]]
        assert statuses == ["ok", "quarantined", "quarantined"]
