"""Supervisor state-machine tests: ok, crash-restart, hang, quarantine.

These run real worker processes (spawn context) over a deliberately tiny
study so each scenario completes in seconds.  Fault injection uses the
harness env knobs scoped by ``REPRO_SHARD_TARGET`` (see
:mod:`repro.shard.worker`): a SIGKILL or stall recurs only on the
targeted shard's first attempt, so the supervisor's restart heals it.
"""

import json

import pytest

from repro import failpoints
from repro.ckpt.journal import CRASH_AFTER_ENV
from repro.ckpt.manager import CheckpointConfig
from repro.honeypot.study import StudyConfig
from repro.obs import ObservabilityConfig
from repro.osn.population import PopulationConfig
from repro.osn.resilient import CircuitBreaker, ResilientAPI
from repro.shard import ShardError, ShardSupervisor
from repro.shard.plan import plan_shards
from repro.shard.worker import HANG_ENV, POISON_ENV, TARGET_ENV

SEED = 11


def tiny_config(campaigns=2, seed=SEED, checkpoint_dir=None, resume=False):
    config = StudyConfig(
        seed=seed,
        scale=0.02,
        population=PopulationConfig(
            n_users=250, n_normal_pages=83, n_spam_pages=30
        ),
        observability=ObservabilityConfig(enabled=True),
    )
    config.active_spec_ids = [
        spec.campaign_id for spec in config.specs[:campaigns]
    ]
    if checkpoint_dir is not None:
        config.checkpoint = CheckpointConfig(
            directory=checkpoint_dir, resume=resume
        )
    return config


def run_supervised(config, jobs=2, **kwargs):
    return ShardSupervisor(config, jobs=jobs, **kwargs).run()


@pytest.fixture
def scoped_env(monkeypatch):
    """Guarantee no injection env leaks between tests."""
    for name in (
        failpoints.ENV_VAR, TARGET_ENV, CRASH_AFTER_ENV, HANG_ENV, POISON_ENV
    ):
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


class TestHappyPath:
    def test_all_shards_ok_and_merged(self, scoped_env):
        result = run_supervised(tiny_config())
        assert [o.status for o in result.outcomes.values()] == ["ok", "ok"]
        assert result.quarantined == []
        assert result.degraded_section is None
        assert len(result.dataset.campaigns) == 2
        assert result.dataset.baseline, "primary shard must collect baseline"
        statuses = [p["status"] for p in result.shards_section["plan"]]
        assert statuses == ["ok", "ok"]
        assert result.execution_section["jobs"] == 2

    def test_jobs_validation(self):
        with pytest.raises(ShardError, match="jobs"):
            ShardSupervisor(tiny_config(), jobs=0)
        with pytest.raises(ShardError, match="retry"):
            ShardSupervisor(tiny_config(), jobs=1, shard_retry=-1)

    def test_completed_shards_skip_on_resume(self, scoped_env, tmp_path):
        root = tmp_path / "ck"
        first = run_supervised(tiny_config(checkpoint_dir=root))
        resumed = run_supervised(
            tiny_config(checkpoint_dir=root, resume=True)
        )
        # Every shard already has done.json: nothing re-runs.
        assert all(o.attempts == 0 for o in resumed.outcomes.values())
        out_a, out_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        first.dataset.to_jsonl(out_a)
        resumed.dataset.to_jsonl(out_b)
        assert out_a.read_bytes() == out_b.read_bytes()


class TestCrashRestart:
    def test_sigkilled_worker_resumes_from_its_wal(self, scoped_env, tmp_path):
        reference = run_supervised(tiny_config())
        config = tiny_config()
        target = plan_shards(config)[1].shard_id
        scoped_env.setenv(TARGET_ENV, target)
        scoped_env.setenv(CRASH_AFTER_ENV, "25")
        result = run_supervised(config)
        assert result.outcomes[target].status == "ok"
        assert result.outcomes[target].attempts == 2, (
            "the injected SIGKILL must have cost exactly one restart"
        )
        out_a, out_b = tmp_path / "ref.jsonl", tmp_path / "crashed.jsonl"
        reference.dataset.to_jsonl(out_a)
        result.dataset.to_jsonl(out_b)
        assert out_a.read_bytes() == out_b.read_bytes()
        assert result.checkpoint["resumed"] is True

    def test_hung_worker_is_sigkilled_and_restarted(self, scoped_env):
        config = tiny_config()
        target = plan_shards(config)[1].shard_id
        scoped_env.setenv(TARGET_ENV, target)
        scoped_env.setenv(HANG_ENV, "1")
        result = run_supervised(config, heartbeat_timeout=1.5)
        assert result.outcomes[target].status == "ok"
        assert result.outcomes[target].attempts == 2


class TestQuarantine:
    def test_poison_shard_quarantined_run_degrades(self, scoped_env):
        config = tiny_config(campaigns=3)
        plan = plan_shards(config)
        target = plan[2].shard_id
        scoped_env.setenv(TARGET_ENV, target)
        scoped_env.setenv(POISON_ENV, "1")
        result = run_supervised(config, shard_retry=1)
        outcome = result.outcomes[target]
        assert outcome.status == "quarantined"
        assert outcome.attempts == 2  # initial + one retry
        assert "injected poison" in outcome.error
        assert result.quarantined == [target]
        assert result.degraded_section == {
            "quarantined": [target],
            "campaigns_lost": [plan[2].campaign_ids[0]],
        }
        # The surviving campaigns merged normally.
        assert len(result.dataset.campaigns) == 2
        assert plan[2].campaign_ids[0] not in result.dataset.campaigns

    def test_poisoned_primary_is_unrecoverable(self, scoped_env):
        config = tiny_config()
        target = plan_shards(config)[0].shard_id
        scoped_env.setenv(TARGET_ENV, target)
        scoped_env.setenv(POISON_ENV, "1")
        with pytest.raises(ShardError, match="primary"):
            run_supervised(config, shard_retry=0)

    def test_every_shard_poisoned_is_unrecoverable(self, scoped_env):
        config = tiny_config()
        scoped_env.setenv(POISON_ENV, "1")  # untargeted: poisons every shard
        with pytest.raises(ShardError, match="every shard"):
            run_supervised(config, shard_retry=0)


class TestResilienceStateRoundTrip:
    """CircuitBreaker/ResilientAPI state survives a worker restart.

    A restarted worker reconstructs its crawl stack and loads the breaker
    states from the shard's snapshot; the state_dict round-trip is what
    that path relies on, so it is pinned here against adversarial
    mid-cooldown and half-open captures, through JSON (the snapshot
    serialisation) rather than in-memory copies.
    """

    def _trip(self, breaker):
        for _ in range(breaker.threshold):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_breaker_round_trips_mid_cooldown(self):
        breaker = CircuitBreaker(threshold=3, cooldown=5)
        self._trip(breaker)
        assert breaker.allow() is False  # one call swallowed
        captured = json.loads(json.dumps(breaker.state_dict()))

        restored = CircuitBreaker(threshold=3, cooldown=5)
        restored.load_state_dict(captured)
        assert restored.state == CircuitBreaker.OPEN
        # The cooldown continues where it stood: 4 more swallowed calls
        # (not 5) until the half-open probe.
        allowed = [restored.allow() for _ in range(4)]
        assert allowed == [False, False, False, True]
        assert restored.state == CircuitBreaker.HALF_OPEN

    def test_breaker_round_trips_failure_streak(self):
        breaker = CircuitBreaker(threshold=4, cooldown=2)
        breaker.record_failure()
        breaker.record_failure()
        restored = CircuitBreaker(threshold=4, cooldown=2)
        restored.load_state_dict(json.loads(json.dumps(breaker.state_dict())))
        # Two more failures (not four) trip the restored breaker.
        assert restored.record_failure() is False
        assert restored.record_failure() is True
        assert restored.state == CircuitBreaker.OPEN

    def test_resilient_api_round_trips_all_breakers(self):
        class _Inner:
            stats = None

        api = ResilientAPI(_Inner())
        self._trip(api.breaker("get_profile"))
        api.breaker("get_friend_list").record_failure()
        captured = json.loads(json.dumps(api.state_dict()))

        restored = ResilientAPI(_Inner())
        restored.load_state_dict(captured)
        assert restored.state_dict() == captured
        assert restored.breaker("get_profile").state == CircuitBreaker.OPEN
