"""The shard plan is a pure, stable function of the configuration."""

from pathlib import Path

from repro.honeypot.study import StudyConfig
from repro.shard.plan import CKPT_DIRNAME, plan_shards, shard_config


def test_one_shard_per_active_spec_in_spec_order():
    config = StudyConfig.small(seed=3)
    plan = plan_shards(config)
    assert [s.campaign_ids for s in plan] == [
        (spec.campaign_id,) for spec in config.specs
    ]
    assert [s.index for s in plan] == list(range(len(config.specs)))
    assert [s.primary for s in plan] == [True] + [False] * (len(plan) - 1)


def test_shard_ids_are_stable_and_ordered():
    config = StudyConfig.small(seed=3)
    plan = plan_shards(config)
    for shard in plan:
        assert shard.shard_id == f"s{shard.index:02d}-{shard.campaign_ids[0]}"
    # Lexicographic order matches plan order (two-digit index prefix).
    assert sorted(s.shard_id for s in plan) == [s.shard_id for s in plan]


def test_plan_respects_active_spec_subset():
    config = StudyConfig.small(seed=3)
    subset = [spec.campaign_id for spec in config.specs[:3]]
    config.active_spec_ids = subset
    plan = plan_shards(config)
    assert [s.campaign_ids[0] for s in plan] == subset


def test_same_config_yields_identical_plan():
    a = plan_shards(StudyConfig.small(seed=3))
    b = plan_shards(StudyConfig.small(seed=3))
    assert a == b


def test_shard_config_narrows_and_roots_checkpoint(tmp_path):
    config = StudyConfig.small(seed=3)
    plan = plan_shards(config)
    shard = plan[2]
    narrowed = shard_config(config, shard, tmp_path / shard.shard_id, resume=True)
    assert narrowed.active_spec_ids == list(shard.campaign_ids)
    assert narrowed.collect_globals is False
    assert narrowed.checkpoint is not None
    assert narrowed.checkpoint.resume is True
    assert narrowed.checkpoint.shard_id == shard.shard_id
    assert Path(narrowed.checkpoint.directory) == (
        tmp_path / shard.shard_id / CKPT_DIRNAME
    )
    # The base config is untouched (shards never share mutable state).
    assert config.active_spec_ids is None
    assert config.collect_globals is True


def test_primary_shard_config_collects_globals(tmp_path):
    config = StudyConfig.small(seed=3)
    primary = plan_shards(config)[0]
    narrowed = shard_config(config, primary, tmp_path / "p", resume=False)
    assert narrowed.collect_globals is True
