"""The kill-and-resume harness (``make crashtest``).

End-to-end enforcement of the durability contract: a study subprocess is
SIGKILLed at several seeded points mid-run, resumed with ``--resume``,
and the final artifacts — the dataset JSONL (byte-for-byte) and the
deterministic sections of the metrics manifest — must equal those of an
uninterrupted same-seed run.  Both the plain and ``--chaos`` crawl paths
are exercised, plus a double-kill chain (crash the resume, resume again).

Kill points are injected via ``REPRO_CKPT_CRASH_AFTER=<n>``: the child
SIGKILLs *itself* right after its n-th durably journaled record (see
``repro.ckpt.journal``).  That is a real, uncatchable SIGKILL — no flush,
no atexit — but it lands at a reproducible record boundary instead of a
racy wall-clock timer, so the harness is deterministic across machines.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import deterministic_sections

REPO = Path(__file__).resolve().parent.parent
SEED = 11
BASE_ARGS = ["run", "--scale", "0.02", "--seed", str(SEED), "--population", "250"]


def run_cli(tmp_path, name, extra, crash_after=None, chaos=False):
    """One study subprocess; returns (returncode, dataset path, manifest path)."""
    out = tmp_path / f"{name}.jsonl"
    manifest = tmp_path / f"{name}-manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if crash_after is not None:
        env["REPRO_CKPT_CRASH_AFTER"] = str(crash_after)
    else:
        env.pop("REPRO_CKPT_CRASH_AFTER", None)
    args = BASE_ARGS + ["--out", str(out), "--metrics", str(manifest)]
    if chaos:
        args.append("--chaos")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli"] + args + extra,
        env=env, cwd=tmp_path, capture_output=True, text=True, timeout=120,
    )
    return completed, out, manifest


def reference_run(tmp_path, chaos):
    """The uninterrupted, checkpoint-free ground truth for one mode."""
    completed, out, manifest = run_cli(tmp_path, "reference", [], chaos=chaos)
    assert completed.returncode in (0, 1), completed.stderr
    return out.read_bytes(), deterministic_sections(json.loads(manifest.read_text()))


def journal_length(directory):
    return len((directory / "journal.jsonl").read_text().splitlines())


def kill_points(total_records, count):
    """``count`` distinct seeded kill points inside the journal's span."""
    rng = random.Random(0xC0FFEE ^ SEED)
    lo, hi = max(2, total_records // 10), max(3, total_records - 2)
    return sorted(rng.sample(range(lo, hi), count))


def assert_killed(completed):
    assert completed.returncode == -signal.SIGKILL, (
        f"expected the injected SIGKILL, got rc={completed.returncode}\n"
        f"{completed.stderr}"
    )


@pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
class TestKillAndResume:
    def test_killed_runs_resume_byte_identically(self, tmp_path, chaos):
        ref_bytes, ref_sections = reference_run(tmp_path, chaos)

        # Size the journal from one uninterrupted checkpointed run.
        whole_dir = tmp_path / "ck-whole"
        completed, whole_out, _ = run_cli(
            tmp_path, "whole",
            ["--checkpoint-dir", str(whole_dir), "--checkpoint-every", "5"],
            chaos=chaos,
        )
        assert completed.returncode in (0, 1), completed.stderr
        assert whole_out.read_bytes() == ref_bytes
        total = journal_length(whole_dir)
        assert total > 20, "journal too small to place kill points"

        for point in kill_points(total, count=3):
            name = f"kill{point}"
            directory = tmp_path / f"ck-{name}"
            completed, _, _ = run_cli(
                tmp_path, name,
                ["--checkpoint-dir", str(directory), "--checkpoint-every", "5"],
                crash_after=point, chaos=chaos,
            )
            assert_killed(completed)
            assert journal_length(directory) >= point

            completed, out, manifest = run_cli(
                tmp_path, f"{name}-resumed", ["--resume", str(directory)],
                chaos=chaos,
            )
            assert completed.returncode in (0, 1), completed.stderr
            assert "checkpoint (resumed):" in completed.stdout
            assert out.read_bytes() == ref_bytes, (
                f"dataset diverged after kill at record {point}"
            )
            sections = deterministic_sections(json.loads(manifest.read_text()))
            assert sections == ref_sections, (
                f"deterministic metrics diverged after kill at record {point}"
            )

    def test_double_kill_chain_resumes_byte_identically(self, tmp_path, chaos):
        """Crash the original run, crash the *resume*, then finish."""
        ref_bytes, ref_sections = reference_run(tmp_path, chaos)
        directory = tmp_path / "ck-chain"
        completed, _, _ = run_cli(
            tmp_path, "chain",
            ["--checkpoint-dir", str(directory), "--checkpoint-every", "5"],
            crash_after=40, chaos=chaos,
        )
        assert_killed(completed)
        # the resume's counter starts from zero *newly written* records,
        # so this second kill lands strictly deeper into the run
        completed, _, _ = run_cli(
            tmp_path, "chain-again", ["--resume", str(directory)],
            crash_after=30, chaos=chaos,
        )
        assert_killed(completed)
        completed, out, manifest = run_cli(
            tmp_path, "chain-final", ["--resume", str(directory)], chaos=chaos,
        )
        assert completed.returncode in (0, 1), completed.stderr
        assert out.read_bytes() == ref_bytes
        sections = deterministic_sections(json.loads(manifest.read_text()))
        assert sections == ref_sections
