"""The kill-and-resume harness (``make crashtest``).

End-to-end enforcement of the durability contract: a study subprocess is
SIGKILLed at several seeded points mid-run, resumed with ``--resume``,
and the final artifacts — the dataset JSONL (byte-for-byte) and the
deterministic sections of the metrics manifest — must equal those of an
uninterrupted same-seed run.  Both the plain and ``--chaos`` crawl paths
are exercised, plus a double-kill chain (crash the resume, resume again).

Kill points are injected via ``REPRO_CKPT_CRASH_AFTER=<n>``: the child
SIGKILLs *itself* right after its n-th durably journaled record (see
``repro.ckpt.journal``).  That is a real, uncatchable SIGKILL — no flush,
no atexit — but it lands at a reproducible record boundary instead of a
racy wall-clock timer, so the harness is deterministic across machines.

Sharded runs (``--jobs N``) extend the same contract: the supervisor
SIGKILLs or loses individual *workers* and the run as a whole must still
come out byte-identical — the crashed shard resumes from its own WAL.
``REPRO_SHARD_TARGET`` scopes the injection envs to a single shard so
the rest of the fleet runs clean.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.honeypot.study import StudyConfig
from repro.obs import deterministic_sections

REPO = Path(__file__).resolve().parent.parent
SEED = 11
BASE_ARGS = ["run", "--scale", "0.02", "--seed", str(SEED), "--population", "250"]


def cli_env(crash_after=None, extra_env=None):
    """Subprocess environment with the injection knobs explicitly scrubbed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    for name in (
        "REPRO_FAILPOINTS",
        "REPRO_CKPT_CRASH_AFTER",
        "REPRO_CKPT_STALL_AFTER",
        "REPRO_CKPT_STALL_SECONDS",
        "REPRO_SHARD_TARGET",
        "REPRO_SHARD_HANG",
        "REPRO_SHARD_POISON",
    ):
        env.pop(name, None)
    if crash_after is not None:
        env["REPRO_CKPT_CRASH_AFTER"] = str(crash_after)
    if extra_env:
        env.update({k: str(v) for k, v in extra_env.items()})
    return env


def run_cli(tmp_path, name, extra, crash_after=None, chaos=False, extra_env=None):
    """One study subprocess; returns (returncode, dataset path, manifest path)."""
    out = tmp_path / f"{name}.jsonl"
    manifest = tmp_path / f"{name}-manifest.json"
    args = BASE_ARGS + ["--out", str(out), "--metrics", str(manifest)]
    if chaos:
        args.append("--chaos")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli"] + args + extra,
        env=cli_env(crash_after, extra_env),
        cwd=tmp_path, capture_output=True, text=True, timeout=120,
    )
    return completed, out, manifest


def reference_run(tmp_path, chaos):
    """The uninterrupted, checkpoint-free ground truth for one mode."""
    completed, out, manifest = run_cli(tmp_path, "reference", [], chaos=chaos)
    assert completed.returncode in (0, 1), completed.stderr
    return out.read_bytes(), deterministic_sections(json.loads(manifest.read_text()))


def journal_length(directory):
    return len((directory / "journal.jsonl").read_text().splitlines())


def kill_points(total_records, count):
    """``count`` distinct seeded kill points inside the journal's span."""
    rng = random.Random(0xC0FFEE ^ SEED)
    lo, hi = max(2, total_records // 10), max(3, total_records - 2)
    return sorted(rng.sample(range(lo, hi), count))


def assert_killed(completed):
    assert completed.returncode == -signal.SIGKILL, (
        f"expected the injected SIGKILL, got rc={completed.returncode}\n"
        f"{completed.stderr}"
    )


@pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
class TestKillAndResume:
    def test_killed_runs_resume_byte_identically(self, tmp_path, chaos):
        ref_bytes, ref_sections = reference_run(tmp_path, chaos)

        # Size the journal from one uninterrupted checkpointed run.
        whole_dir = tmp_path / "ck-whole"
        completed, whole_out, _ = run_cli(
            tmp_path, "whole",
            ["--checkpoint-dir", str(whole_dir), "--checkpoint-every", "5"],
            chaos=chaos,
        )
        assert completed.returncode in (0, 1), completed.stderr
        assert whole_out.read_bytes() == ref_bytes
        total = journal_length(whole_dir)
        assert total > 20, "journal too small to place kill points"

        for point in kill_points(total, count=3):
            name = f"kill{point}"
            directory = tmp_path / f"ck-{name}"
            completed, _, _ = run_cli(
                tmp_path, name,
                ["--checkpoint-dir", str(directory), "--checkpoint-every", "5"],
                crash_after=point, chaos=chaos,
            )
            assert_killed(completed)
            assert journal_length(directory) >= point

            completed, out, manifest = run_cli(
                tmp_path, f"{name}-resumed", ["--resume", str(directory)],
                chaos=chaos,
            )
            assert completed.returncode in (0, 1), completed.stderr
            assert "checkpoint (resumed):" in completed.stdout
            assert out.read_bytes() == ref_bytes, (
                f"dataset diverged after kill at record {point}"
            )
            sections = deterministic_sections(json.loads(manifest.read_text()))
            assert sections == ref_sections, (
                f"deterministic metrics diverged after kill at record {point}"
            )

    def test_double_kill_chain_resumes_byte_identically(self, tmp_path, chaos):
        """Crash the original run, crash the *resume*, then finish."""
        ref_bytes, ref_sections = reference_run(tmp_path, chaos)
        directory = tmp_path / "ck-chain"
        completed, _, _ = run_cli(
            tmp_path, "chain",
            ["--checkpoint-dir", str(directory), "--checkpoint-every", "5"],
            crash_after=40, chaos=chaos,
        )
        assert_killed(completed)
        # the resume's counter starts from zero *newly written* records,
        # so this second kill lands strictly deeper into the run
        completed, _, _ = run_cli(
            tmp_path, "chain-again", ["--resume", str(directory)],
            crash_after=30, chaos=chaos,
        )
        assert_killed(completed)
        completed, out, manifest = run_cli(
            tmp_path, "chain-final", ["--resume", str(directory)], chaos=chaos,
        )
        assert completed.returncode in (0, 1), completed.stderr
        assert out.read_bytes() == ref_bytes
        sections = deterministic_sections(json.loads(manifest.read_text()))
        assert sections == ref_sections


# --------------------------------------------------------------------------- #
# Sharded execution (--jobs N)
# --------------------------------------------------------------------------- #

#: Shard ids follow the plan: s<index>-<campaign_id> over the spec list.
SPEC_IDS = [spec.campaign_id for spec in StudyConfig.small(seed=SEED).specs]
SHARD_IDS = [f"s{i:02d}-{cid}" for i, cid in enumerate(SPEC_IDS)]


def shard_args(jobs, campaigns=3, extra=()):
    return ["--jobs", str(jobs), "--campaigns", str(campaigns), *extra]


class TestShardedDeterminism:
    @pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
    def test_jobs_4_is_byte_identical_to_jobs_1(self, tmp_path, chaos):
        """The acceptance pin: --jobs N is one determinism domain."""
        completed, ref_out, ref_manifest = run_cli(
            tmp_path, "j1", shard_args(jobs=1, campaigns=4), chaos=chaos
        )
        assert completed.returncode == 0, completed.stderr
        ref_sections = deterministic_sections(json.loads(ref_manifest.read_text()))
        assert ref_sections["shards"] is not None

        completed, out, manifest = run_cli(
            tmp_path, "j4", shard_args(jobs=4, campaigns=4), chaos=chaos
        )
        assert completed.returncode == 0, completed.stderr
        assert out.read_bytes() == ref_out.read_bytes()
        sections = deterministic_sections(json.loads(manifest.read_text()))
        assert sections == ref_sections

    def test_sigkilled_worker_resumes_from_its_wal(self, tmp_path):
        """A worker SIGKILLed mid-phase costs a restart, never a byte."""
        completed, ref_out, ref_manifest = run_cli(
            tmp_path, "shard-ref", shard_args(jobs=2)
        )
        assert completed.returncode == 0, completed.stderr

        target = SHARD_IDS[0]  # the primary: the hardest shard to lose
        completed, out, manifest = run_cli(
            tmp_path, "shard-killed", shard_args(jobs=2),
            extra_env={"REPRO_SHARD_TARGET": target,
                       "REPRO_CKPT_CRASH_AFTER": "25"},
        )
        assert completed.returncode == 0, completed.stderr
        assert out.read_bytes() == ref_out.read_bytes(), (
            "dataset diverged after the worker SIGKILL"
        )
        body = json.loads(manifest.read_text())
        assert body["shard_execution"]["attempts"][target] == 2, (
            "the injected SIGKILL must have cost exactly one restart"
        )
        ref_sections = deterministic_sections(json.loads(ref_manifest.read_text()))
        assert deterministic_sections(body) == ref_sections


class TestShardedExitCodes:
    def test_degraded_run_exits_4_with_manifest_section(self, tmp_path):
        target = SHARD_IDS[2]
        completed, out, manifest = run_cli(
            tmp_path, "degraded", shard_args(jobs=2, extra=["--shard-retry", "0"]),
            extra_env={"REPRO_SHARD_TARGET": target, "REPRO_SHARD_POISON": "1"},
        )
        assert completed.returncode == 4, completed.stderr
        assert "QUARANTINED" in completed.stderr
        body = json.loads(manifest.read_text())
        assert body["degraded"]["quarantined"] == [target]
        assert body["degraded"]["campaigns_lost"] == [SPEC_IDS[2]]
        # The run still completed: the surviving campaigns are all present.
        data = out.read_text()
        assert f'"campaign_id": "{SPEC_IDS[0]}"' in data
        assert f'"campaign_id": "{SPEC_IDS[2]}"' not in data

    def test_lost_primary_exits_5(self, tmp_path):
        completed, _, _ = run_cli(
            tmp_path, "lost-primary",
            shard_args(jobs=2, extra=["--shard-retry", "0"]),
            extra_env={"REPRO_SHARD_TARGET": SHARD_IDS[0],
                       "REPRO_SHARD_POISON": "1"},
        )
        assert completed.returncode == 5, completed.stderr
        assert "unrecoverable shard failure" in completed.stderr

    def test_invalid_jobs_exits_2(self, tmp_path):
        completed, _, _ = run_cli(tmp_path, "badjobs", ["--jobs", "0"])
        assert completed.returncode == 2
        completed, _, _ = run_cli(tmp_path, "badcamp", ["--campaigns", "99"])
        assert completed.returncode == 2


class TestShardedInterrupt:
    def test_sigint_flushes_final_snapshots_for_all_live_shards(self, tmp_path):
        """Satellite of the durability contract: Ctrl-C mid-phase leaves
        every live shard with a durable ``snapshot-interrupt-*``, and the
        run exits 130."""
        root = tmp_path / "ck-int"
        # Untargeted stall: every worker sleeps after its 20th journal
        # record, holding all live shards mid-phase while we interrupt.
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli"]
            + BASE_ARGS
            + ["--out", str(tmp_path / "int.jsonl"),
               "--metrics", str(tmp_path / "int-manifest.json")]
            + shard_args(jobs=2, campaigns=2)
            + ["--checkpoint-dir", str(root)],
            env=cli_env(extra_env={"REPRO_CKPT_STALL_AFTER": "20",
                                   "REPRO_CKPT_STALL_SECONDS": "120"}),
            cwd=tmp_path, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            journals = [
                root / SHARD_IDS[0] / "ckpt" / "journal.jsonl",
                root / SHARD_IDS[1] / "ckpt" / "journal.jsonl",
            ]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                done = sum(
                    1 for journal in journals
                    if journal.exists()
                    and len(journal.read_text().splitlines()) >= 20
                )
                if done == len(journals):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("workers never reached the stall point")
            time.sleep(0.5)  # let both workers settle into the stall sleep
            process.send_signal(signal.SIGINT)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 130, stderr
        for shard_id in SHARD_IDS[:2]:
            snapshots = list(
                (root / shard_id / "ckpt").glob("snapshot-interrupt-*")
            )
            assert snapshots, (
                f"shard {shard_id} exited without flushing a final "
                f"interrupt snapshot\n{stderr}"
            )
