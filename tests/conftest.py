"""Shared fixtures.

The full (small-scale) study takes ~1.5 s, so it runs once per session and
is shared by every test that only reads from it.  Tests that mutate state
build their own worlds.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import HoneypotExperiment
from repro.core.results import ExperimentResults
from repro.honeypot.study import StudyArtifacts, StudyConfig
from repro.util.rng import RngStream


@pytest.fixture(scope="session")
def small_experiment() -> HoneypotExperiment:
    """A completed small-scale experiment (shared, read-only)."""
    experiment = HoneypotExperiment(StudyConfig.small())
    experiment.run()
    return experiment


@pytest.fixture(scope="session")
def small_results(small_experiment) -> ExperimentResults:
    """Analysis results of the shared small experiment."""
    return ExperimentResults(dataset=small_experiment.artifacts.dataset)


@pytest.fixture(scope="session")
def small_artifacts(small_experiment) -> StudyArtifacts:
    """Ground-truth artifacts of the shared small experiment."""
    return small_experiment.artifacts


@pytest.fixture(scope="session")
def small_dataset(small_artifacts):
    """The crawled dataset of the shared small experiment."""
    return small_artifacts.dataset


@pytest.fixture()
def rng() -> RngStream:
    """A fresh deterministic RNG stream."""
    return RngStream(12345, "test")
