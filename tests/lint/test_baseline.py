"""Baseline semantics: round-trip, line-drift tolerance, stale entries."""

import json
from pathlib import Path

import pytest

from repro.lint.baseline import BASELINE_VERSION, Baseline
from repro.lint.runner import lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"
BAD_DET003 = FIXTURES / "bad_det003.py"


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert baseline.entries == {}


def test_round_trip_silences_the_run(tmp_path):
    findings = lint_source(BAD_DET003.read_text(), str(BAD_DET003))
    assert findings  # the fixture is known-bad
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)

    result = lint_paths([BAD_DET003], baseline=Baseline.load(path))
    assert result.findings == []
    assert result.baseline_matched == len(findings)
    assert result.stale_baseline_entries == []
    assert result.exit_code == 0


def test_baseline_survives_line_drift(tmp_path):
    source = "def f(xs):\n    seen = set(xs)\n    return list(seen)\n"
    findings = lint_source(source, "drift.py")
    assert [f.code for f in findings] == ["DET003"]
    baseline = Baseline.from_findings(findings)

    # Two blank lines prepended: the finding moves but its source line
    # text is unchanged, so the baseline still matches.
    drifted = lint_source("\n\n" + source, "drift.py")
    new, matched, stale = baseline.filter(drifted)
    assert new == []
    assert matched == 1
    assert stale == []


def test_edited_offending_line_resurfaces(tmp_path):
    source = "def f(xs):\n    seen = set(xs)\n    return list(seen)\n"
    baseline = Baseline.from_findings(lint_source(source, "drift.py"))

    edited = "def f(xs):\n    seen = set(sorted(xs))\n    return list(seen)\n"
    findings = lint_source(edited, "drift.py")
    new, matched, stale = baseline.filter(findings)
    assert [f.code for f in new] == ["DET003"]  # edited line != baseline entry
    assert matched == 0
    assert len(stale) == 1  # the old entry is now stale debt


def test_fixed_finding_reports_stale_entry():
    source = "def f(xs):\n    seen = set(xs)\n    return list(seen)\n"
    baseline = Baseline.from_findings(lint_source(source, "fixed.py"))
    fixed = "def f(xs):\n    seen = set(xs)\n    return sorted(seen)\n"
    new, matched, stale = baseline.filter(lint_source(fixed, "fixed.py"))
    assert new == []
    assert matched == 0
    assert stale == [("fixed.py", "DET003", "seen = set(xs)")]


def test_multiset_semantics():
    # Two identical offending lines need two baseline entries.
    source = (
        "def f(xs):\n"
        "    a = set(xs)\n"
        "    return list(a)\n"
        "\n"
        "def g(xs):\n"
        "    a = set(xs)\n"
        "    return list(a)\n"
    )
    findings = lint_source(source, "twice.py")
    assert len(findings) == 2
    one_entry = Baseline.from_findings(findings[:1])
    new, matched, _ = one_entry.filter(findings)
    assert matched == 1
    assert len(new) == 1


def test_save_is_stable_sorted_json(tmp_path):
    findings = lint_source(BAD_DET003.read_text(), str(BAD_DET003))
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    data = json.loads(path.read_text())
    assert data["version"] == BASELINE_VERSION
    rows = [(e["path"], e["code"], e["source_line"]) for e in data["entries"]]
    assert rows == sorted(rows)


def test_unsupported_version_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError, match="unsupported baseline version"):
        Baseline.load(path)


def test_committed_repo_baseline_is_empty():
    repo_root = Path(__file__).resolve().parents[2]
    committed = Baseline.load(repo_root / "lint-baseline.json")
    assert committed.entries == {}, (
        "lint-baseline.json must stay empty: fix or justify findings "
        "instead of baselining new debt"
    )
