"""SQL001 positives: every statement contradicts schema.py somewhere."""

UNKNOWN_COLUMN = "SELECT likes, cost FROM campaigns"

UNKNOWN_TABLE = "SELECT user_id FROM likerz"

BAD_ALIAS_REF = "SELECT c.follower_count FROM campaigns c WHERE c.likes > 0"

BAD_INSERT = "INSERT INTO likers (user_id, region) VALUES (?, ?)"

BAD_INDEX = "CREATE INDEX idx_spendy ON campaigns (budget)"
