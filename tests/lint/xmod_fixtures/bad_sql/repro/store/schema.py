"""Fixture schema: two tables the queries module must agree with."""

DDL = """
CREATE TABLE campaigns (
    campaign_id TEXT PRIMARY KEY,
    likes INTEGER NOT NULL,
    spend REAL
);

CREATE TABLE likers (
    user_id INTEGER PRIMARY KEY,
    country TEXT
);
"""
