"""Seeded regression: an upward import from osn into honeypot."""

from repro.honeypot.study import HoneypotStudy


def peek(study: HoneypotStudy) -> str:
    return study.__class__.__name__
