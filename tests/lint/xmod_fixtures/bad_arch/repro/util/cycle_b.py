"""The other half of the deliberate module-level import cycle."""

from repro.util.cycle_a import alpha


def beta() -> int:
    return alpha() + 1
