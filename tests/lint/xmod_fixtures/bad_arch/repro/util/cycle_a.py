"""Half of a deliberate module-level import cycle."""

from repro.util.cycle_b import beta


def alpha() -> int:
    return beta() + 1
