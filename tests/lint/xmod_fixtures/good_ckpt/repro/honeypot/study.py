"""Anchor module for the clean checkpoint fixture."""

from dataclasses import dataclass

from repro.honeypot.tracker import Tracker


@dataclass
class _StudyComponents:
    """What the fixture study carries across its phase barriers."""

    tracker: Tracker
