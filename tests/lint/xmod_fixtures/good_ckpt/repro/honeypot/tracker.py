"""Proven-safe counterpart: every mutable attribute round-trips."""

from typing import List


class Tracker:
    """Mutable study-phase state with a complete, symmetric snapshot."""

    def __init__(self) -> None:
        self.items: List[int] = []
        self.count = 0

    def bump(self, value: int) -> None:
        self.items.append(value)
        self.count += 1

    def state_dict(self) -> dict:
        return {"items": list(self.items), "count": self.count}

    def load_state_dict(self, state: dict) -> None:
        self.items = list(state["items"])
        self.count = int(state["count"])
