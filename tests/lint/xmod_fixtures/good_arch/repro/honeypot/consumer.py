"""Downward imports that follow the layering DAG; proven clean."""

from repro.osn.feed import peek
from repro.util.cycle_free import helper


def run() -> str:
    return peek(None) + helper()
