"""Seeded regression: a state_dict that misses one mutable attribute."""

from typing import List


class Tracker:
    """Mutable study-phase state with an incomplete snapshot."""

    def __init__(self) -> None:
        self.items: List[int] = []
        self.count = 0

    def bump(self, value: int) -> None:
        self.items.append(value)
        self.count += 1

    def state_dict(self) -> dict:
        # BUG under test: ``count`` is mutated across barriers but never
        # snapshotted, so a resume silently resets it.
        return {"items": list(self.items)}

    def load_state_dict(self, state: dict) -> None:
        self.items = list(state["items"])


class HalfPair:
    """Defines only half the checkpoint contract."""

    def __init__(self) -> None:
        self.values: List[int] = []

    def state_dict(self) -> dict:
        return {"values": list(self.values)}
