"""Anchor module: the phase-barrier component bundle for the fixture."""

from dataclasses import dataclass

from repro.honeypot.tracker import Tracker


@dataclass
class _StudyComponents:
    """What the fixture study carries across its phase barriers."""

    tracker: Tracker
