"""FP001 negative: every hit names a registered literal, all are hit."""

from repro import failpoints


def write() -> None:
    failpoints.hit("durable.rename")
    failpoints.hit("ckpt.journal.record")
