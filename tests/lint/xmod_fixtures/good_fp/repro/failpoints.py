"""FP001 negative: a closed catalog of unique literal names."""


def register(name):
    return name


def hit(name):
    return name


register("durable.rename")
register("ckpt.journal.record")
