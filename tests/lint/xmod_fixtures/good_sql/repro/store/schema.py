"""Fixture schema for the proven-clean SQL module."""

DDL = """
CREATE TABLE campaigns (
    campaign_id TEXT PRIMARY KEY,
    likes INTEGER NOT NULL,
    spend REAL
);

CREATE TABLE likers (
    user_id INTEGER PRIMARY KEY,
    country TEXT
);
"""
