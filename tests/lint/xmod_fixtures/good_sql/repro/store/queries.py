"""SQL001 negatives: joins, aliases, upserts, and dynamic fragments."""

SIMPLE = "SELECT campaign_id, likes FROM campaigns ORDER BY likes DESC"

ALIASED_JOIN = (
    "SELECT c.campaign_id, l.country FROM campaigns c "
    "JOIN likers l ON l.user_id = c.likes"
)

UPSERT = (
    "INSERT INTO campaigns (campaign_id, likes, spend) VALUES (?, ?, ?) "
    "ON CONFLICT (campaign_id) DO UPDATE SET likes = excluded.likes"
)

INDEX = "CREATE INDEX idx_likes ON campaigns (likes)"


def count_rows(table: str) -> str:
    # dynamic table name: the checker must skip, not guess
    return f"SELECT COUNT(*) AS n FROM {table}"
