"""Callees for the clean stream-usage fixture."""

from repro.util.rng import RngStream


def draw_noise(rng: RngStream) -> float:
    return rng.uniform(0.0, 1.0)


class ConsumerA:
    def __init__(self, rng: RngStream) -> None:
        self.rng = rng
