"""Proven-safe stream usage: draw-then-fork, distinct labels, one retainer."""

from repro.util.rng import RngStream

from repro.sim.helper import ConsumerA, draw_noise


def draws_then_forks(rng: RngStream) -> float:
    jitter = rng.uniform(0.0, 1.0)  # all parent draws happen first
    child = rng.child("weights")
    return jitter + child.uniform(0.0, 1.0)


def distinct_labels(rng: RngStream) -> tuple:
    return rng.child("ads"), rng.child("farms")


def per_page_labels(rng: RngStream, pages: list) -> list:
    # dynamic labels derive a distinct stream per page, so the loop is fine
    return [rng.child(f"page:{page}") for page in pages]


def single_retainer(rng: RngStream) -> object:
    handle = ConsumerA(rng.child("consumer"))
    noise = draw_noise(rng.child("noise"))
    return handle, noise
