"""XDET001: the parent stream is consumed after spawning children."""

from repro.util.rng import RngStream

from repro.sim.helper import draw_noise


def direct(rng: RngStream) -> float:
    child = rng.child("weights")
    jitter = rng.uniform(0.0, 1.0)  # draw AFTER the fork above
    return jitter + child.uniform(0.0, 1.0)


def through_callee(rng: RngStream) -> float:
    child = rng.child("weights")
    noise = draw_noise(rng)  # the callee draws from the forked parent
    return noise + child.uniform(0.0, 1.0)
