"""XDET002: aliased streams — duplicate labels, loop forks, double retention."""

from repro.util.rng import RngStream

from repro.sim.helper import ConsumerA, ConsumerB


def duplicate_labels(rng: RngStream) -> float:
    first = rng.child("shared")
    second = rng.child("shared")  # identical stream: same seed derivation
    return first.uniform(0.0, 1.0) + second.uniform(0.0, 1.0)


def fork_in_loop(rng: RngStream, pages: list) -> list:
    streams = []
    for page in pages:
        streams.append(rng.child("page"))  # every iteration aliases "page"
    return streams


def double_retention(rng: RngStream) -> tuple:
    a = ConsumerA(rng)
    b = ConsumerB(rng)  # two consumers now hold the same stream
    return a, b
