"""XDET003: a root stream constructed outside the rng discipline."""

from repro.util.rng import RngStream


def make_stream() -> RngStream:
    return RngStream(7, "rogue")
