"""Callees for the cross-module RNG violations."""

from repro.util.rng import RngStream


def draw_noise(rng: RngStream) -> float:
    return rng.uniform(0.0, 1.0)


class ConsumerA:
    def __init__(self, rng: RngStream) -> None:
        self.rng = rng


class ConsumerB:
    def __init__(self, rng: RngStream) -> None:
        self.rng = rng
