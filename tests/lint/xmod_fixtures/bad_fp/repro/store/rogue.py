"""FP001 positive: a registration outside the registry module."""

from repro.failpoints import register

ROGUE = register("store.rogue.site")
