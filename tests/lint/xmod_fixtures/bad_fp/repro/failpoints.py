"""FP001 positives (registry side): duplicate, dynamic, and dead entries."""

SUFFIX = "write"


def register(name):
    return name


def hit(name):
    return name


register("durable.rename")
register("durable.rename")  # duplicate: the catalog must be unique
register("durable." + SUFFIX)  # dynamic: not statically knowable
register("ckpt.dead.entry")  # registered but never hit anywhere
