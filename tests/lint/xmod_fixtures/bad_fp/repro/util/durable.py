"""FP001 positives (hit side): dynamic and unregistered names."""

from repro import failpoints


def write(table: str) -> None:
    failpoints.hit("durable.rename")  # fine: registered literal
    failpoints.hit("store." + table)  # dynamic: the sweep cannot arm it
    failpoints.hit("durable.typo")  # names nothing in the catalog
