"""Fixture-corpus tests: each rule fires exactly where expected."""

from pathlib import Path

from repro.lint.runner import lint_paths, lint_source, module_name_for

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(fixture: str):
    path = FIXTURES / fixture
    return lint_source(path.read_text(), str(path))


def lines_with(findings, code):
    return sorted(f.line for f in findings if f.code == code)


class TestDet001WallClock:
    def test_bad_fixture_fires_at_expected_lines(self):
        findings = findings_for("bad_det001.py")
        assert lines_with(findings, "DET001") == [3, 9, 10, 14]
        assert all(f.code == "DET001" for f in findings)

    def test_clean_fixture_is_silent(self):
        assert findings_for("clean_det001.py") == []

    def test_allowlisted_module_is_exempt(self):
        source = "import time\nwall = time.perf_counter()\n"
        findings = lint_source(source, "metrics.py", module_name="repro.obs.metrics")
        assert findings == []
        # The same source outside the allowlist fires.
        findings = lint_source(source, "engine.py", module_name="repro.farms.catalog")
        assert lines_with(findings, "DET001") == [1, 2]

    def test_aliased_import_is_resolved(self):
        source = "import time as _walltime\n\nx = _walltime.monotonic()\n"
        findings = lint_source(source, "m.py", module_name="repro.analysis.stats")
        assert lines_with(findings, "DET001") == [1, 3]


class TestDet002UnseededRandom:
    def test_bad_fixture_fires_at_expected_lines(self):
        findings = findings_for("bad_det002.py")
        assert lines_with(findings, "DET002") == [3, 13, 17]

    def test_clean_fixture_is_silent(self):
        assert findings_for("clean_det002.py") == []

    def test_default_rng_allowed_only_in_rng_home(self):
        source = "import numpy as np\ngen = np.random.default_rng(7)\n"
        assert lint_source(source, "rng.py", module_name="repro.util.rng") == []
        outside = lint_source(source, "x.py", module_name="repro.sim.engine")
        assert lines_with(outside, "DET002") == [2]

    def test_from_import_of_draw_function(self):
        source = "from numpy.random import rand\n"
        findings = lint_source(source, "x.py", module_name="repro.osn.api")
        assert lines_with(findings, "DET002") == [1]

    def test_generator_type_import_is_fine(self):
        source = "from numpy.random import Generator\n"
        assert lint_source(source, "x.py", module_name="repro.osn.api") == []


class TestDet003SetOrder:
    def test_bad_fixture_fires_at_expected_lines(self):
        findings = findings_for("bad_det003.py")
        assert lines_with(findings, "DET003") == [7, 14, 18, 23]

    def test_clean_fixture_is_silent(self):
        assert findings_for("clean_det003.py") == []

    def test_sorted_wrapping_silences(self):
        source = "def f(xs):\n    return sorted(set(xs))\n"
        assert lint_source(source, "x.py") == []

    def test_membership_and_len_are_safe(self):
        source = (
            "def f(xs, ys):\n"
            "    seen = set(xs)\n"
            "    return len(seen) + sum(1 for y in ys if y in seen)\n"
        )
        assert lint_source(source, "x.py") == []

    def test_set_pop_is_flagged(self):
        source = "def f(xs):\n    s = set(xs)\n    return s.pop()\n"
        findings = lint_source(source, "x.py")
        assert lines_with(findings, "DET003") == [2]

    def test_self_attribute_tracked_across_methods(self):
        source = (
            "class C:\n"
            "    def __init__(self, xs):\n"
            "        self.seen = set(xs)\n"
            "    def dump(self):\n"
            "        return list(self.seen)\n"
        )
        findings = lint_source(source, "x.py")
        assert lines_with(findings, "DET003") == [3]

    def test_membership_only_attribute_is_safe(self):
        # The honeypot monitor's _seen set: membership + update only.
        source = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.seen = set()\n"
            "    def poll(self, ids):\n"
            "        new = tuple(u for u in ids if u not in self.seen)\n"
            "        self.seen.update(new)\n"
            "        return new\n"
        )
        assert lint_source(source, "x.py") == []

    def test_empty_set_return_is_exempt(self):
        source = "def f():\n    return set()\n"
        assert lint_source(source, "x.py") == []


class TestDet004ProcessState:
    def test_bad_fixture_fires_at_expected_lines(self):
        findings = findings_for("bad_det004.py")
        assert lines_with(findings, "DET004") == [3, 6, 15, 19]

    def test_clean_fixture_is_silent(self):
        assert findings_for("clean_det004.py") == []

    def test_shard_package_is_exempt(self):
        source = (
            "import multiprocessing\n"
            "import os\n\n"
            "def launch():\n"
            "    os.setpgrp()\n"
            "    return os.getpid()\n"
        )
        for module in ("repro.shard", "repro.shard.worker", "repro.shard.supervisor"):
            assert lint_source(source, "w.py", module_name=module) == []
        outside = lint_source(source, "w.py", module_name="repro.sim.engine")
        assert lines_with(outside, "DET004") == [1, 5, 6]

    def test_shard_prefix_does_not_leak_to_other_packages(self):
        # "repro.sharding" must not ride the "repro.shard" exemption.
        source = "import os\npid = os.getpid()\n"
        findings = lint_source(source, "x.py", module_name="repro.sharding.util")
        assert lines_with(findings, "DET004") == [2]

    def test_aliased_os_call_is_resolved(self):
        source = "import os as _os\n\n_os.fork()\n"
        findings = lint_source(source, "x.py", module_name="repro.osn.api")
        assert lines_with(findings, "DET004") == [3]


class TestHyg001MutableDefault:
    def test_bad_fixture_fires_at_expected_lines(self):
        findings = findings_for("bad_hyg001.py")
        assert lines_with(findings, "HYG001") == [4, 9, 9]

    def test_clean_fixture_is_silent(self):
        assert findings_for("clean_hyg001.py") == []


class TestHyg002BroadExcept:
    def test_bad_fixture_fires_at_expected_lines(self):
        findings = findings_for("bad_hyg002.py")
        assert lines_with(findings, "HYG002") == [7, 14]

    def test_clean_fixture_is_silent(self):
        assert findings_for("clean_hyg002.py") == []


class TestHyg003SlotlessDataclass:
    def test_bad_fixture_fires_at_expected_lines(self):
        path = FIXTURES / "repro" / "osn" / "bad_hyg003.py"
        assert module_name_for(path) == "repro.osn.bad_hyg003"
        findings = lint_source(path.read_text(), str(path))
        assert lines_with(findings, "HYG003") == [12, 19]

    def test_clean_fixture_is_silent(self):
        path = FIXTURES / "repro" / "osn" / "clean_hyg003.py"
        assert lint_source(path.read_text(), str(path)) == []

    def test_cold_modules_are_exempt(self):
        source = "from dataclasses import dataclass\n\n@dataclass\nclass C:\n    x: int\n"
        assert lint_source(source, "x.py", module_name="repro.analysis.stats") == []
        hot = lint_source(source, "x.py", module_name="repro.osn.page")
        assert lines_with(hot, "HYG003") == [4]


class TestRunnerOverCorpus:
    def test_each_bad_fixture_fails_with_its_code(self):
        expectations = {
            "bad_det001.py": "DET001",
            "bad_det002.py": "DET002",
            "bad_det003.py": "DET003",
            "bad_det004.py": "DET004",
            "bad_hyg001.py": "HYG001",
            "bad_hyg002.py": "HYG002",
            "repro/osn/bad_hyg003.py": "HYG003",
        }
        for fixture, code in expectations.items():
            result = lint_paths([FIXTURES / fixture])
            assert result.exit_code == 1, fixture
            assert code in result.counts_by_code(), fixture

    def test_clean_fixtures_pass(self):
        for fixture in (
            "clean_det001.py", "clean_det002.py", "clean_det003.py",
            "clean_det004.py", "clean_hyg001.py", "clean_hyg002.py",
            "repro/osn/clean_hyg003.py", "suppressed_clean.py",
        ):
            result = lint_paths([FIXTURES / fixture])
            assert result.exit_code == 0, fixture
            assert result.findings == [], fixture

    def test_findings_are_sorted_and_stable(self):
        result = lint_paths([FIXTURES])
        ordering = [(f.path, f.line, f.code) for f in result.findings]
        assert ordering == sorted(ordering)
