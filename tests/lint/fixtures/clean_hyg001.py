"""HYG001-clean: None defaults, initialised inside."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def label(prefix: str = "run", count: int = 0) -> str:
    # Immutable defaults are fine.
    return f"{prefix}-{count}"
