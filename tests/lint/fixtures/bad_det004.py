"""DET004 violation: process state managed outside repro.shard."""

import multiprocessing  # line 3: DET004 (process-module import)
import os

from concurrent.futures import ProcessPoolExecutor  # line 6: DET004 (from-import)


def fan_out(work):
    with multiprocessing.Pool(4) as pool:
        return pool.map(len, work)


def stamp() -> int:
    return os.getpid()  # line 15: DET004 (pid read)


def reap(pid: int) -> None:
    os.kill(pid, 9)  # line 19: DET004 (signal send)
