"""DET001-clean: time comes from the simulation clock, not the wall."""

from datetime import datetime


def simulated_duration(start_minute: int, end_minute: int) -> int:
    return end_minute - start_minute


def fixed_epoch() -> "datetime":
    # Constructing a datetime from literals is deterministic; only the
    # now()/utcnow()/today() family reads the wall clock.
    return datetime(2014, 3, 12)
