"""Clean under DET004: os use without process management."""

import os


def read_env(name: str) -> str:
    return os.environ.get(name, "")


def exists(path: str) -> bool:
    return os.path.exists(path)
