"""LNT001/LNT002 violations: unused and malformed suppressions."""


def add(a: int, b: int) -> int:
    return a + b  # repro-lint: allow-DET003 nothing here to suppress (line 5: LNT001)


def sub(a: int, b: int) -> int:
    # The next directive carries no justification text -> LNT002.
    return a - b  # repro-lint: allow-DET003


def mul(a: int, b: int) -> int:
    return a * b  # repro-lint: allow-XYZ999 unknown code (line 13: LNT002)
