"""DET003-clean: sets stay unordered or pass through sorted()."""

from typing import List, Set


def visible_ids(records) -> List[int]:
    seen: Set[int] = set()
    for record in records:
        seen.add(record.user_id)
    return sorted(seen)


def serialize(tags) -> str:
    return ",".join(sorted(set(tags)))


def count_shared(a: Set[int], b: Set[int]) -> int:
    # Membership, len(), and set algebra never observe iteration order.
    return len(a & b)


def has_any(candidates, allowed: Set[int]) -> bool:
    return any(c in allowed for c in candidates)
