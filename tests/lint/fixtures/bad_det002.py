"""DET002 violation: randomness outside the RngStream hierarchy."""

import random  # line 3: DET002 (stdlib random)

import numpy as np


def roll() -> int:
    return random.randint(1, 6)


def noisy() -> float:
    return float(np.random.normal(0.0, 1.0))  # line 13: DET002 (global numpy RNG)


def fresh_generator():
    return np.random.default_rng(42)  # line 17: DET002 (generator outside rng home)
