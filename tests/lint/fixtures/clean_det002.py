"""DET002-clean: every draw flows through a seeded RngStream."""


def roll(rng) -> int:
    """``rng`` is a repro.util.rng.RngStream forked by the caller."""
    return rng.randint(1, 7)


def noisy(rng) -> float:
    return rng.normal(0.0, 1.0)
