"""HYG001 violation: mutable default arguments."""


def collect(item, bucket=[]):  # line 4: HYG001 (shared list default)
    bucket.append(item)
    return bucket


def tally(key, counts={}, seen=set()):  # line 9: HYG001 x2 (dict and set defaults)
    counts[key] = counts.get(key, 0) + 1
    seen.add(key)
    return counts
