"""DET003 violations: unordered sets reaching ordered output."""

from typing import List, Set


def visible_ids(records) -> List[int]:
    seen: Set[int] = set()  # line 7: DET003 (materialised by list() on line 10)
    for record in records:
        seen.add(record.user_id)
    return list(seen)


def serialize(tags) -> str:
    return ",".join(set(tags))  # line 14: DET003 (inline set joined into a string)


def export_rows(ids):
    for user_id in set(ids):  # line 18: DET003 (inline set iterated by for)
        yield {"user": user_id}


def escaping(records) -> Set[str]:
    names = {record.name for record in records}  # line 23: DET003 (escapes via return)
    return names
