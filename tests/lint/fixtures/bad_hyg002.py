"""HYG002 violation: bare/broad excepts that swallow failures."""


def swallow_everything(action):
    try:
        return action()
    except:  # line 7: HYG002 (bare except)
        return None


def swallow_broadly(action):
    try:
        return action()
    except Exception:  # line 14: HYG002 (broad except, no re-raise)
        return None
