"""DET001 violation: wall-clock reads in a non-allowlisted module."""

import time  # line 3: DET001 (import of the wall-clock module)

from datetime import datetime


def simulated_duration() -> float:
    started = time.perf_counter()  # line 9: DET001 (clock call)
    return time.perf_counter() - started  # line 10: DET001 (clock call)


def stamp() -> str:
    return datetime.now().isoformat()  # line 14: DET001 (datetime.now)
