"""HYG002-clean: specific exceptions, or cleanup-then-reraise."""


def parse_or_default(text: str, default: int = 0) -> int:
    try:
        return int(text)
    except ValueError:
        return default


def cleanup_then_reraise(action, undo):
    try:
        return action()
    except BaseException:
        # Broad catch is accepted when the handler re-raises: the failure
        # stays loud, the cleanup still happens.
        undo()
        raise
