"""HYG003-clean: hot-path dataclasses carry slots=True."""

from dataclasses import dataclass, field
from typing import List


@dataclass(slots=True)
class LikeRecord:
    user_id: int
    page_id: int
    time: int


@dataclass(slots=True, frozen=True)
class PageStats:
    page_id: int
    liker_ids: List[int] = field(default_factory=list)
