"""HYG003 violation: slot-less dataclasses in a hot (osn) module.

This fixture lives under a ``repro/osn/`` directory so the runner derives
the hot module name ``repro.osn.bad_hyg003``.
"""

from dataclasses import dataclass, field
from typing import List


@dataclass  # line 12: HYG003 (no slots on the hot path)
class LikeRecord:
    user_id: int
    page_id: int
    time: int


@dataclass(frozen=True)  # line 19: HYG003 (arguments but no slots=True)
class PageStats:
    page_id: int
    liker_ids: List[int] = field(default_factory=list)
