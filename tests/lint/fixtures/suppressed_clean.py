"""Every finding silenced by a justified suppression -> clean file."""

from typing import List, Set


def visible_ids(records) -> List[int]:
    # repro-lint: allow-DET003 demo fixture; consumer deduplicates and re-sorts downstream
    seen: Set[int] = set()
    for record in records:
        seen.add(record.user_id)
    return list(seen)


def serialize(tags) -> str:
    return ",".join(set(tags))  # repro-lint: allow-DET003 demo fixture; tags are single-element in this corpus
