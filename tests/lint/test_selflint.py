"""The self-lint gate: ``src/`` must be clean with zero unused suppressions.

This is the acceptance criterion of the determinism contract: every rule
passes over the entire codebase, every inline suppression is justified
AND currently silencing a real finding (an unused one is an LNT001
error), and the committed baseline carries no debt.  Run as tier-1 so a
regression in either the code or the linter itself fails the build.
"""

import subprocess
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.runner import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_lints_clean_with_committed_baseline():
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    result = lint_paths([SRC], baseline=baseline)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.exit_code == 0, f"src/ is not lint-clean:\n{rendered}"
    assert result.findings == []
    assert result.stale_baseline_entries == []


def test_no_unused_suppressions_in_src():
    # LNT001 findings are part of the run; a clean run implies every
    # suppression silenced something.  Assert it explicitly anyway so the
    # failure message names the stale directive.
    result = lint_paths([SRC])
    unused = [f.render() for f in result.findings if f.code == "LNT001"]
    assert unused == []


def test_module_entry_point_exits_zero_on_src():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(SRC), "--format", "json"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_lint_package_has_coverage_of_itself():
    # The linter lints its own package: no special-casing of src/repro/lint.
    result = lint_paths([SRC / "repro" / "lint"])
    assert result.checked_files >= 8
    assert result.findings == []
