"""CLI contract: exit codes, JSON report shape, select/list-rules."""

import json
from pathlib import Path

import pytest

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

BAD_FIXTURES = {
    "bad_det001.py": "DET001",
    "bad_det002.py": "DET002",
    "bad_det003.py": "DET003",
    "bad_hyg001.py": "HYG001",
    "bad_hyg002.py": "HYG002",
    "repro/osn/bad_hyg003.py": "HYG003",
    "bad_suppressions.py": "LNT001",
}


@pytest.mark.parametrize("fixture,code", sorted(BAD_FIXTURES.items()))
def test_each_bad_fixture_exits_nonzero_with_code_in_json(
    fixture, code, capsys
):
    exit_code = main([str(FIXTURES / fixture), "--format", "json"])
    assert exit_code == 1
    report = json.loads(capsys.readouterr().out)
    assert code in report["counts_by_code"], fixture
    assert report["exit_code"] == 1
    assert any(f["code"] == code for f in report["findings"])


def test_clean_fixture_exits_zero_with_empty_findings(capsys):
    exit_code = main([str(FIXTURES / "clean_det003.py"), "--format", "json"])
    assert exit_code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["findings"] == []
    assert report["checked_files"] == 1


def test_text_format_renders_path_line_code(capsys):
    exit_code = main([str(FIXTURES / "bad_hyg001.py")])
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "bad_hyg001.py:4 HYG001" in out


def test_select_restricts_rules(capsys):
    bad = str(FIXTURES / "bad_det001.py")
    assert main([bad, "--select", "DET002", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["findings"] == []
    assert main([bad, "--select", "DET001"]) == 1


def test_select_unknown_code_is_usage_error(capsys):
    assert main([str(FIXTURES), "--select", "NOPE01"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main(["definitely/not/a/path"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_covers_every_code(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "HYG001", "HYG002", "HYG003",
                 "LNT001", "LNT002", "LNT003"):
        assert code in out


def test_write_baseline_then_rerun_is_clean(tmp_path, capsys):
    bad = str(FIXTURES / "bad_det003.py")
    baseline = tmp_path / "baseline.json"
    assert main([bad, "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    assert main([bad, "--baseline", str(baseline)]) == 0


def test_write_baseline_without_baseline_is_usage_error(capsys):
    assert main([str(FIXTURES / "bad_det003.py"), "--write-baseline"]) == 2
    assert "requires --baseline" in capsys.readouterr().err
