"""The whole-program (``--xmod``) analysis pass, end to end.

Each rule family gets a positive fixture (a mini ``repro`` package with
a seeded cross-module defect) and a proven-safe negative; the facts
cache is exercised cold, warm, and across an edit; and the self-analysis
test pins ``src/`` clean so a regression in either the codebase or the
analyzer fails tier-1.
"""

import json
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.runner import LintResult, lint_paths
from repro.lint.sarif import render_sarif
from repro.lint.xmod import FactsCache, extract_module_facts

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).parent / "xmod_fixtures"


def xmod(name: str) -> LintResult:
    return lint_paths([FIXTURES / name], xmod=True)


def codes(result: LintResult) -> list:
    return sorted(f.code for f in result.findings)


def rendered(result: LintResult) -> str:
    return "\n".join(f.render() for f in result.findings)


# -- ARCH001: layering DAG and cycles ----------------------------------------- #


class TestLayering:
    def test_upward_import_from_osn_into_honeypot_is_refused(self):
        result = xmod("bad_arch")
        layer = [
            f for f in result.findings
            if f.code == "ARCH001" and "may not import" in f.message
        ]
        assert len(layer) == 1, rendered(result)
        assert layer[0].path.endswith("repro/osn/feed.py")
        assert "'osn'" in layer[0].message
        assert "'honeypot'" in layer[0].message

    def test_module_level_import_cycle_is_reported_on_both_edges(self):
        result = xmod("bad_arch")
        cycles = [
            f for f in result.findings
            if f.code == "ARCH001" and "import cycle" in f.message
        ]
        assert {Path(f.path).name for f in cycles} == {
            "cycle_a.py",
            "cycle_b.py",
        }, rendered(result)
        assert all("repro.util.cycle_a" in f.message for f in cycles)

    def test_downward_imports_are_clean(self):
        result = xmod("good_arch")
        assert result.findings == [], rendered(result)


# -- CKPT001/002: checkpoint coverage and symmetry ----------------------------- #


class TestCheckpointCoverage:
    def test_state_dict_missing_one_mutable_attr_is_caught(self):
        # The seeded regression from the issue: Tracker.count is mutated
        # across barriers but never snapshotted.
        result = xmod("bad_ckpt")
        misses = [f for f in result.findings if f.code == "CKPT002"]
        assert len(misses) == 1, rendered(result)
        assert "Tracker.count" in misses[0].message
        assert misses[0].path.endswith("repro/honeypot/tracker.py")

    def test_half_a_checkpoint_pair_is_asymmetric(self):
        result = xmod("bad_ckpt")
        halves = [f for f in result.findings if f.code == "CKPT001"]
        assert len(halves) == 1, rendered(result)
        assert "HalfPair" in halves[0].message
        assert "state_dict but not load_state_dict" in halves[0].message

    def test_symmetric_fully_covered_pair_is_clean(self):
        result = xmod("good_ckpt")
        assert result.findings == [], rendered(result)


# -- XDET: cross-module stream lineage ----------------------------------------- #


class TestStreamLineage:
    def test_draw_after_fork_direct_and_through_a_callee(self):
        result = xmod("bad_rng")
        draws = [f for f in result.findings if f.code == "XDET001"]
        assert len(draws) == 2, rendered(result)
        by_message = sorted(f.message for f in draws)
        assert "in direct" in by_message[0]
        assert "inside draw_noise" in by_message[1]  # interprocedural

    def test_aliasing_duplicate_label_loop_fork_and_double_retention(self):
        result = xmod("bad_rng")
        aliases = sorted(
            f.message for f in result.findings if f.code == "XDET002"
        )
        assert len(aliases) == 3, rendered(result)
        assert any("forked twice under the same label" in m for m in aliases)
        assert any("inside a loop" in m for m in aliases)
        assert any("retained by two callees" in m for m in aliases)

    def test_root_constructed_outside_the_discipline(self):
        result = xmod("bad_rng")
        roots = [f for f in result.findings if f.code == "XDET003"]
        assert len(roots) == 1, rendered(result)
        assert roots[0].path.endswith("rootmaker.py")

    def test_disciplined_usage_is_clean(self):
        # draw-then-fork, distinct labels, dynamic per-page labels, and
        # per-consumer children must all pass.
        result = xmod("good_rng")
        assert result.findings == [], rendered(result)


# -- SQL001: literals vs the schema DDL ---------------------------------------- #


class TestSqlSchema:
    def test_every_contradiction_kind_is_caught(self):
        result = xmod("bad_sql")
        messages = "\n".join(
            f.message for f in result.findings if f.code == "SQL001"
        )
        assert "column 'cost' is not declared" in messages
        assert "table 'likerz' not declared" in messages
        assert "'campaigns' has no column 'follower_count'" in messages
        assert "INSERT column 'region' is not declared" in messages
        assert "CREATE INDEX key column 'budget'" in messages

    def test_joins_upserts_and_dynamic_fragments_are_clean(self):
        result = xmod("good_sql")
        assert result.findings == [], rendered(result)


# -- FP001: the failpoint catalog ---------------------------------------------- #


class TestFailpoints:
    def test_every_catalog_violation_kind_is_caught(self):
        result = xmod("bad_fp")
        messages = "\n".join(
            f.message for f in result.findings if f.code == "FP001"
        )
        assert "'durable.rename' registered twice" in messages
        assert "registered with a non-literal name" in messages
        assert "registered outside the registry module" in messages
        assert "hit() called with a non-literal name" in messages
        assert "hit('durable.typo') names an unregistered" in messages
        assert "'ckpt.dead.entry' is registered but never hit" in messages
        assert len([f for f in result.findings if f.code == "FP001"]) == 6

    def test_rogue_registration_is_anchored_at_its_call_site(self):
        result = xmod("bad_fp")
        rogue = [
            f for f in result.findings
            if f.code == "FP001" and "outside the registry" in f.message
        ]
        assert len(rogue) == 1
        assert rogue[0].path.endswith("repro/store/rogue.py")

    def test_closed_literal_fully_hit_catalog_is_clean(self):
        result = xmod("good_fp")
        assert result.findings == [], rendered(result)

    def test_real_registry_matches_the_extracted_catalog(self):
        # The runtime registry and FP001's static view of src/ must agree
        # exactly — a drift either way breaks the sweep's completeness.
        import ast

        from repro import failpoints

        source = (SRC / "repro/failpoints.py").read_text()
        facts = extract_module_facts(
            ast.parse(source), "failpoints.py", "repro.failpoints"
        )
        static = sorted(
            f.name for f in facts.failpoints if f.kind == "register"
        )
        assert static == failpoints.all_failpoints()


# -- facts cache --------------------------------------------------------------- #


class TestFactsCache:
    def test_cold_then_warm_then_invalidation_on_edit(self, tmp_path):
        fixture = tmp_path / "repro" / "sim"
        fixture.mkdir(parents=True)
        a = fixture / "a.py"
        b = fixture / "b.py"
        a.write_text("X = 1\n")
        b.write_text("Y = 2\n")
        cache_path = tmp_path / "cache.json"

        cold = lint_paths([tmp_path], xmod=True, xmod_cache=cache_path)
        assert cold.xmod["cache_misses"] == 2
        assert cold.xmod["cache_hits"] == 0
        assert cache_path.exists()

        warm = lint_paths([tmp_path], xmod=True, xmod_cache=cache_path)
        assert warm.xmod["cache_hits"] == 2
        assert warm.xmod["cache_misses"] == 0
        assert warm.xmod["cache_hit_rate"] == 1.0

        a.write_text("X = 3\n")  # content hash changes; b.py stays cached
        edited = lint_paths([tmp_path], xmod=True, xmod_cache=cache_path)
        assert edited.xmod["cache_hits"] == 1
        assert edited.xmod["cache_misses"] == 1

    def test_cached_facts_equal_freshly_extracted_facts(self, tmp_path):
        import ast

        source = (FIXTURES / "bad_rng/repro/sim/alias.py").read_text()
        fresh = extract_module_facts(
            ast.parse(source), "alias.py", "repro.sim.alias"
        )
        cache_path = tmp_path / "cache.json"
        cache = FactsCache(cache_path)
        cache.put("alias.py", source, fresh)
        cache.save()
        reloaded = FactsCache(cache_path).get("alias.py", source)
        assert reloaded is not None
        assert reloaded.as_dict() == fresh.as_dict()

    def test_corrupt_cache_file_degrades_to_cold(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        (tmp_path / "m.py").write_text("Z = 1\n")
        result = lint_paths([tmp_path], xmod=True, xmod_cache=cache_path)
        assert result.xmod["cache_misses"] == 1  # corrupt cache = cold start


# -- self-analysis: src/ must hold the whole-program contract ------------------ #


class TestSelfAnalysis:
    def test_src_is_xmod_clean_with_the_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths([SRC], baseline=baseline, xmod=True)
        assert result.findings == [], (
            "src/ fails whole-program analysis:\n" + rendered(result)
        )
        assert result.xmod["modules"] == result.checked_files

    def test_no_unused_suppressions_under_xmod(self):
        result = lint_paths([SRC], xmod=True)
        unused = [f.render() for f in result.findings if f.code == "LNT001"]
        assert unused == []

    def test_xmod_suppressions_are_inert_in_per_module_runs(self):
        # src/ carries allow-CKPT00x suppressions for the whole-program
        # rules; a per-module run must treat them as inert, not unused.
        result = lint_paths([SRC])
        unused = [f.render() for f in result.findings if f.code == "LNT001"]
        assert unused == []


# -- SARIF reporter ------------------------------------------------------------ #


class TestSarif:
    def test_findings_render_as_sarif_results(self):
        result = xmod("bad_arch")
        log = json.loads(render_sarif(result))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == len(result.findings)
        first = run["results"][0]
        assert first["ruleId"] == "ARCH001"
        assert first["level"] == "error"
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(".py")
        assert location["region"]["startLine"] >= 1

    def test_rule_metadata_covers_every_reported_code(self):
        result = xmod("bad_rng")
        run = json.loads(render_sarif(result))["runs"][0]
        declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        used = {r["ruleId"] for r in run["results"]}
        assert used <= declared
        assert {"XDET001", "XDET002", "XDET003"} <= declared

    def test_clean_run_renders_an_empty_results_array(self):
        log = json.loads(render_sarif(xmod("good_rng")))
        assert log["runs"][0]["results"] == []
