"""Suppression mechanics: trailing/standalone targeting, LNT001, LNT002."""

from pathlib import Path

from repro.lint.runner import lint_source
from repro.lint.suppress import scan_suppressions

FIXTURES = Path(__file__).parent / "fixtures"

KNOWN = ["DET001", "DET002", "DET003", "HYG001", "HYG002", "HYG003"]


def codes_at(findings):
    return sorted((f.line, f.code) for f in findings)


class TestScan:
    def test_trailing_comment_targets_its_own_line(self):
        source = 'x = ",".join(names)  # repro-lint: allow-DET003 demo\n'
        suppressions, malformed = scan_suppressions(source, "x.py", KNOWN)
        assert malformed == []
        (s,) = suppressions
        assert (s.line, s.target_line) == (1, 1)
        assert s.codes == ("DET003",)
        assert s.justification == "demo"

    def test_standalone_comment_targets_next_code_line(self):
        source = (
            "# repro-lint: allow-DET003 consumer sorts downstream\n"
            "# an unrelated comment in between\n"
            "seen = set(xs)\n"
        )
        suppressions, malformed = scan_suppressions(source, "x.py", KNOWN)
        assert malformed == []
        (s,) = suppressions
        assert (s.line, s.target_line) == (1, 3)

    def test_multiple_codes_in_one_directive(self):
        source = "pass  # repro-lint: allow-DET001,DET002 demo justification\n"
        suppressions, malformed = scan_suppressions(source, "x.py", KNOWN)
        assert malformed == []
        assert suppressions[0].codes == ("DET001", "DET002")

    def test_directive_examples_in_docstrings_are_ignored(self):
        source = '"""Use # repro-lint: allow-DET003 to justify a site."""\n'
        suppressions, malformed = scan_suppressions(source, "x.py", KNOWN)
        assert suppressions == []
        assert malformed == []

    def test_unknown_code_is_lnt002(self):
        source = "pass  # repro-lint: allow-XYZ999 because reasons\n"
        _, malformed = scan_suppressions(source, "x.py", KNOWN)
        assert [f.code for f in malformed] == ["LNT002"]
        assert "XYZ999" in malformed[0].message

    def test_missing_justification_is_lnt002(self):
        source = "pass  # repro-lint: allow-DET003\n"
        _, malformed = scan_suppressions(source, "x.py", KNOWN)
        assert [f.code for f in malformed] == ["LNT002"]
        assert "justification" in malformed[0].message

    def test_gibberish_body_is_lnt002(self):
        source = "pass  # repro-lint: please ignore this\n"
        _, malformed = scan_suppressions(source, "x.py", KNOWN)
        assert [f.code for f in malformed] == ["LNT002"]


class TestEndToEnd:
    def test_suppressed_fixture_is_fully_clean(self):
        path = FIXTURES / "suppressed_clean.py"
        assert lint_source(path.read_text(), str(path)) == []

    def test_bad_suppressions_fixture(self):
        path = FIXTURES / "bad_suppressions.py"
        findings = lint_source(path.read_text(), str(path))
        assert codes_at(findings) == [(5, "LNT001"), (10, "LNT002"), (14, "LNT002")]

    def test_used_suppression_silences_only_its_code(self):
        # The directive names DET001 but the line violates DET003: the
        # finding survives AND the suppression is reported unused.
        source = 'out = ",".join(set(tags))  # repro-lint: allow-DET001 wrong code\n'
        findings = lint_source(source, "x.py")
        assert sorted(f.code for f in findings) == ["DET003", "LNT001"]

    def test_meta_findings_cannot_be_suppressed(self):
        # An LNT002 on a line cannot be silenced by a directive on the same
        # line — the malformed finding is appended after suppressions apply.
        source = "pass  # repro-lint: allow-XYZ999 because reasons\n"
        findings = lint_source(source, "x.py")
        assert [f.code for f in findings] == ["LNT002"]

    def test_syntax_error_reports_lnt003(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert [f.code for f in findings] == ["LNT003"]
