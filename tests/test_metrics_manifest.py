"""The observability acceptance gate: ``run --metrics`` and its contract.

Covers the tentpole end to end at CLI level, the way CI runs it:

* the chaos smoke with ``--metrics`` emits a parseable manifest;
* two runs with the same seed produce byte-identical deterministic
  sections (counters, gauges, config hash, virtual minutes, dataset);
* a different seed produces different counters (the hash covers the seed);
* the registry-backed ``RequestStats`` views and the manifest counters are
  two views of the same numbers;
* ``summary.run_health`` folds crawl completeness and request accounting
  into one section.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.summary import run_health
from repro.cli import main
from repro.core.experiment import HoneypotExperiment
from repro.honeypot.study import StudyConfig
from repro.obs import (
    ObservabilityConfig,
    build_manifest,
    config_fingerprint,
    deterministic_sections,
)
from repro.obs.manifest import SCHEMA


def _run_cli(tmp_path, seed, name, chaos=True):
    manifest_path = tmp_path / f"{name}.json"
    argv = [
        "run",
        "--seed", str(seed),
        "--out", str(tmp_path / f"{name}.jsonl"),
        "--metrics", str(manifest_path),
    ]
    if chaos:
        argv.append("--chaos")
    assert main(argv) == 0
    return json.loads(manifest_path.read_text())


class TestCliManifest:
    def test_chaos_run_emits_parseable_manifest(self, tmp_path):
        manifest = _run_cli(tmp_path, seed=20140312, name="chaos")
        assert manifest["schema"] == SCHEMA
        assert manifest["seed"] == 20140312
        assert len(manifest["config_hash"]) == 16
        assert manifest["virtual_minutes"] > 0
        assert manifest["counters"]["osn.requests.page"] > 0
        assert manifest["counters"]["honeypot.polls"] > 0
        # The chaos profile injects faults, so the resilient layer shows up.
        assert manifest["counters"]["osn.resilience.retries"] > 0
        assert manifest["dataset"]["campaigns"] == 13

    def test_same_seed_identical_deterministic_sections(self, tmp_path):
        first = _run_cli(tmp_path, seed=99, name="a")
        second = _run_cli(tmp_path, seed=99, name="b")
        assert deterministic_sections(first) == deterministic_sections(second)

    def test_different_seed_differs(self, tmp_path):
        first = _run_cli(tmp_path, seed=1, name="s1", chaos=False)
        second = _run_cli(tmp_path, seed=2, name="s2", chaos=False)
        assert first["config_hash"] != second["config_hash"]
        assert first["counters"] != second["counters"]

    def test_counter_keys_sorted(self, tmp_path):
        manifest = _run_cli(tmp_path, seed=5, name="sorted", chaos=False)
        for section in ("counters", "gauges"):
            keys = list(manifest[section])
            assert keys == sorted(keys)


class TestRegistryViews:
    @pytest.fixture(scope="class")
    def chaos_experiment(self):
        config = StudyConfig.chaos()
        config.observability = ObservabilityConfig(enabled=True)
        experiment = HoneypotExperiment(config)
        experiment.run()
        return experiment

    def test_stats_views_equal_registry_counters(self, chaos_experiment):
        stats = chaos_experiment.artifacts.api.stats
        registry = chaos_experiment.artifacts.metrics
        assert stats.metrics is registry
        assert stats.retries == registry.value("osn.resilience.retries")
        assert stats.total == sum(
            registry.value(f"osn.requests.{kind}")
            for kind in ("profile", "friend_list", "page_likes", "page")
        )

    def test_manifest_from_live_registry(self, chaos_experiment):
        config = chaos_experiment.config
        manifest = build_manifest(
            config,
            chaos_experiment.artifacts.metrics,
            wall_seconds=1.0,
            virtual_minutes=1,
            dataset=chaos_experiment.artifacts.dataset,
        )
        assert manifest["config_hash"] == config_fingerprint(config)
        assert manifest["dataset"]["total_likes"] == (
            chaos_experiment.artifacts.dataset.total_likes
        )

    def test_run_health_section(self, chaos_experiment):
        health = run_health(
            chaos_experiment.artifacts.dataset, chaos_experiment.artifacts
        )
        section = health.as_dict()
        assert section["n_likers"] == len(chaos_experiment.artifacts.dataset.likers)
        assert section["requests"] > 0
        assert section["faults_injected"] > 0
        assert 0.0 <= section["complete_fraction"] <= 1.0
        # The chaos profile loses polls and degrades records.
        assert section["degraded"] is True

    def test_run_health_from_dataset_alone(self, chaos_experiment):
        health = run_health(chaos_experiment.artifacts.dataset)
        assert health.requests == 0
        assert health.crawl.n_likers > 0


class TestDisabledObservability:
    def test_default_study_uses_null_registry(self):
        from repro.obs.metrics import NULL_METRICS

        experiment = HoneypotExperiment.small()
        experiment.run()
        assert experiment.artifacts.metrics is NULL_METRICS
        # RequestStats still counts through its own private registry.
        assert experiment.artifacts.api.stats.total > 0
