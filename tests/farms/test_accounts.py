"""Tests for repro.farms.accounts and repro.farms.base."""

import numpy as np
import pytest

from repro.farms.accounts import FakeAccountFactory, FarmAccountConfig
from repro.farms.base import (
    REGION_USA,
    REGION_WORLDWIDE,
    FarmOrder,
    OrderStatus,
)
from repro.osn.network import SocialNetwork
from repro.osn.population import PopulationConfig, WorldBuilder
from repro.osn.profile import Gender
from repro.util.distributions import Categorical, LogNormalCount
from repro.util.validation import ValidationError


@pytest.fixture()
def factory(rng):
    net = SocialNetwork()
    world = WorldBuilder(PopulationConfig.small()).build(net, rng.child("w"))
    return net, FakeAccountFactory(net, world.universe)


def young_config(**kwargs):
    defaults = dict(
        gender_female_share=0.3,
        age=Categorical({"13-17": 1.0}),
    )
    defaults.update(kwargs)
    return FarmAccountConfig(**defaults)


class TestFarmOrder:
    def test_valid(self):
        order = FarmOrder(
            farm_name="X", page_id=1, target_likes=1000,
            region=REGION_USA, price=50.0, promised_days=3,
        )
        assert order.status == OrderStatus.PLACED
        assert not order.is_inactive

    def test_record_delivery_completes(self):
        order = FarmOrder(
            farm_name="X", page_id=1, target_likes=10,
            region=REGION_USA, price=5.0, promised_days=3,
        )
        order.scheduled_likes = 2
        order.record_delivery()
        assert order.status == OrderStatus.PLACED
        order.record_delivery()
        assert order.status == OrderStatus.COMPLETED

    def test_unknown_region_rejected(self):
        with pytest.raises(ValidationError):
            FarmOrder(farm_name="X", page_id=1, target_likes=10,
                      region="Mars", price=5.0, promised_days=3)


class TestFarmAccountConfig:
    def test_fixed_country_overrides(self, rng):
        config = young_config(fixed_country="TR")
        assert config.country_for_region(REGION_USA, rng) == "TR"
        assert config.country_for_region(REGION_WORLDWIDE, rng) == "TR"

    def test_usa_region_honoured(self, rng):
        config = young_config()
        countries = {config.country_for_region(REGION_USA, rng) for _ in range(100)}
        assert "US" in countries
        us_share = sum(
            config.country_for_region(REGION_USA, rng) == "US" for _ in range(200)
        ) / 200
        assert us_share > 0.8

    def test_ignoring_targeting_uses_worldwide(self, rng):
        config = young_config(honors_targeting=False)
        countries = [config.country_for_region(REGION_USA, rng) for _ in range(300)]
        assert len(set(countries)) > 3  # spread over the worldwide mix

    def test_invalid_gender_share(self):
        with pytest.raises(ValidationError):
            young_config(gender_female_share=2.0)


class TestFakeAccountFactory:
    def test_cohort_label(self, factory, rng):
        net, fac = factory
        accounts = fac.create_accounts("Brand.com", young_config(), REGION_USA, 10, rng)
        assert all(net.user(a).cohort == "farm:Brand.com" for a in accounts)
        assert all(net.user(a).is_farm_account for a in accounts)

    def test_count_zero(self, factory, rng):
        net, fac = factory
        assert fac.create_accounts("B", young_config(), REGION_USA, 0, rng) == []

    def test_gender_share(self, factory, rng):
        net, fac = factory
        config = young_config(gender_female_share=0.9)
        accounts = fac.create_accounts("B", config, REGION_USA, 200, rng)
        females = sum(1 for a in accounts if net.user(a).gender == Gender.FEMALE)
        assert females / len(accounts) > 0.8

    def test_friend_counts_follow_config(self, factory, rng):
        net, fac = factory
        config = young_config(
            background_friends=LogNormalCount(median=800, sigma=0.3, minimum=100)
        )
        accounts = fac.create_accounts("B", config, REGION_USA, 150, rng)
        medians = float(np.median([net.declared_friend_count(a) for a in accounts]))
        assert 600 <= medians <= 1000

    def test_like_counts_follow_config(self, factory, rng):
        net, fac = factory
        config = young_config(
            page_like_count=LogNormalCount(median=1500, sigma=0.3, minimum=100)
        )
        accounts = fac.create_accounts("B", config, REGION_USA, 150, rng)
        medians = float(np.median([net.declared_like_count(a) for a in accounts]))
        assert 1100 <= medians <= 1900

    def test_explicit_likes_capped(self, factory, rng):
        net, fac = factory
        config = young_config(explicit_like_cap=30)
        accounts = fac.create_accounts("B", config, REGION_USA, 20, rng)
        assert all(net.user_like_count(a) <= 30 for a in accounts)

    def test_not_searchable(self, factory, rng):
        net, fac = factory
        accounts = fac.create_accounts("B", young_config(), REGION_USA, 10, rng)
        assert all(not net.user(a).searchable for a in accounts)

    def test_spam_segment_used(self, factory, rng):
        net, fac = factory
        config = young_config(spam_key="alms")
        accounts = fac.create_accounts("B", config, REGION_USA, 30, rng)
        spam_likes = sum(
            1
            for a in accounts
            for p in net.user_liked_page_ids(a)
            if net.page(p).category == "spam-job"
        )
        assert spam_likes > 0
