"""Tests for repro.farms.catalog."""

import numpy as np
import pytest

from repro.farms.accounts import FakeAccountFactory
from repro.farms.base import REGION_USA, REGION_WORLDWIDE, OrderStatus
from repro.farms.catalog import (
    AUTHENTICLIKES,
    BOOSTLIKES,
    MAMMOTHSOCIALS,
    PRICE_LIST,
    SOCIALFORMULA,
    DeliveryStrategy,
    FarmCatalog,
)
from repro.osn.network import SocialNetwork
from repro.osn.population import PopulationConfig, WorldBuilder
from repro.sim.engine import EventEngine
from repro.util.rng import RngStream
from repro.util.timeutil import DAY, HOUR
from repro.util.validation import ValidationError


@pytest.fixture()
def world(rng):
    net = SocialNetwork()
    built = WorldBuilder(PopulationConfig.small()).build(net, rng.child("w"))
    factory = FakeAccountFactory(net, built.universe)
    catalog = FarmCatalog(net, factory, rng.child("farms"))
    return net, catalog


def place(net, catalog, brand, region, target=120, fulfillment=1.0):
    engine = EventEngine()
    page = net.create_page(f"{brand}-{region}-{net.page_count}", category="honeypot")
    order = catalog.service(brand).place_order(
        page.page_id, region, target, engine, fulfillment=fulfillment
    )
    engine.run_until(25 * DAY)
    return page, order


class TestDeliveryStrategy:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            DeliveryStrategy(kind="instant")

    def test_burst_plan_uses_burst_scheduler(self, rng):
        strategy = DeliveryStrategy(kind="burst", spread_days=2.0)
        plan = strategy.plan(list(range(50)), start=0, rng=rng)
        assert max(t for t, _ in plan) <= 2 * DAY + 4 * HOUR

    def test_trickle_plan_spreads(self, rng):
        strategy = DeliveryStrategy(kind="trickle", duration_days=15.0)
        plan = strategy.plan(list(range(100)), start=0, rng=rng)
        assert len({t // DAY for t, _ in plan}) >= 10


class TestCatalog:
    def test_all_four_brands(self, world):
        _, catalog = world
        assert set(catalog.services) == {
            BOOSTLIKES, SOCIALFORMULA, AUTHENTICLIKES, MAMMOTHSOCIALS,
        }

    def test_prices_from_table1(self, world):
        _, catalog = world
        assert catalog.service(BOOSTLIKES).price(REGION_USA) == 190.00
        assert catalog.service(SOCIALFORMULA).price(REGION_WORLDWIDE) == 14.99
        assert len(PRICE_LIST) == 8

    def test_al_ms_share_operator(self, world):
        _, catalog = world
        assert (
            catalog.service(AUTHENTICLIKES).operator
            is catalog.service(MAMMOTHSOCIALS).operator
        )

    def test_bl_and_ms_scam_worldwide(self, world):
        net, catalog = world
        for brand in (BOOSTLIKES, MAMMOTHSOCIALS):
            page, order = place(net, catalog, brand, REGION_WORLDWIDE)
            assert order.status == OrderStatus.INACTIVE
            assert net.page_like_count(page.page_id) == 0


class TestOrderDelivery:
    def test_delivery_count(self, world):
        net, catalog = world
        page, order = place(net, catalog, SOCIALFORMULA, REGION_WORLDWIDE,
                            target=100, fulfillment=0.8)
        assert order.delivered_likes == 80
        assert net.page_like_count(page.page_id) == 80
        assert order.status == OrderStatus.COMPLETED

    def test_socialformula_turkish(self, world):
        net, catalog = world
        page, _ = place(net, catalog, SOCIALFORMULA, REGION_USA)
        countries = {net.user(u).country for u in net.page_liker_ids(page.page_id)}
        assert countries == {"TR"}

    def test_boostlikes_usa_compliant(self, world):
        net, catalog = world
        page, _ = place(net, catalog, BOOSTLIKES, REGION_USA)
        likers = net.page_liker_ids(page.page_id)
        us = sum(1 for u in likers if net.user(u).country == "US")
        assert us / len(likers) > 0.8

    def test_boostlikes_low_like_counts(self, world):
        net, catalog = world
        page, _ = place(net, catalog, BOOSTLIKES, REGION_USA)
        likers = net.page_liker_ids(page.page_id)
        median = float(np.median([net.declared_like_count(u) for u in likers]))
        assert median < 200  # paper: 63

    def test_burst_farm_like_counts_heavy(self, world):
        net, catalog = world
        page, _ = place(net, catalog, AUTHENTICLIKES, REGION_USA)
        likers = net.page_liker_ids(page.page_id)
        median = float(np.median([net.declared_like_count(u) for u in likers]))
        assert median > 800  # paper: 1200-1800

    def test_boostlikes_dense_graph(self, world):
        net, catalog = world
        page, order = place(net, catalog, BOOSTLIKES, REGION_USA)
        edges = list(net.graph.edges_within(order.account_ids))
        mean_degree = 2 * len(edges) / len(order.account_ids)
        assert mean_degree > 2.0

    def test_ms_reuses_al_accounts(self, world):
        net, catalog = world
        al_page, al_order = place(net, catalog, AUTHENTICLIKES, REGION_USA)
        ms_page, ms_order = place(net, catalog, MAMMOTHSOCIALS, REGION_USA)
        shared = set(al_order.account_ids) & set(ms_order.account_ids)
        assert len(shared) > 0.4 * len(ms_order.account_ids)

    def test_cohort_labels_per_brand(self, world):
        net, catalog = world
        page, order = place(net, catalog, SOCIALFORMULA, REGION_WORLDWIDE)
        assert all(
            net.user(a).cohort == "farm:SocialFormula.com"
            for a in order.account_ids
        )

    def test_delivery_skips_terminated(self, world):
        net, catalog = world
        engine = EventEngine()
        page = net.create_page("victim", category="honeypot")
        order = catalog.service(SOCIALFORMULA).place_order(
            page.page_id, REGION_WORLDWIDE, 50, engine, fulfillment=1.0
        )
        # terminate half the accounts before delivery fires
        for account in order.account_ids[:25]:
            net.terminate_account(account, time=0)
        engine.run_until(10 * DAY)
        assert order.delivered_likes == 25
