"""Tests for repro.farms.scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.farms.scheduler import burst_schedule, trickle_schedule
from repro.util.rng import RngStream
from repro.util.timeutil import DAY, HOUR
from repro.util.validation import ValidationError

ACCOUNTS = [100 + i for i in range(200)]


class TestBurstSchedule:
    def test_conservation(self, rng):
        plan = burst_schedule(ACCOUNTS, start=0, rng=rng)
        assert len(plan) == len(ACCOUNTS)
        assert sorted(a for _, a in plan) == sorted(ACCOUNTS)

    def test_sorted_by_time(self, rng):
        plan = burst_schedule(ACCOUNTS, start=0, rng=rng)
        times = [t for t, _ in plan]
        assert times == sorted(times)

    def test_within_spread(self, rng):
        plan = burst_schedule(ACCOUNTS, start=0, rng=rng, spread_days=3.0)
        assert all(0 <= t <= 3 * DAY + 2 * HOUR for t, _ in plan)

    def test_respects_first_burst_delay(self, rng):
        plan = burst_schedule(
            ACCOUNTS, start=0, rng=rng, first_burst_delay=DAY, spread_days=3.0
        )
        assert min(t for t, _ in plan) >= DAY

    def test_compressed_into_bursts(self, rng):
        """Most of the order lands inside few short windows."""
        from repro.analysis.stats import max_count_in_window
        plan = burst_schedule(
            ACCOUNTS, start=0, rng=rng, n_bursts=2, burst_width=2 * HOUR
        )
        times = [t for t, _ in plan]
        assert max_count_in_window(times, 2 * HOUR) >= len(ACCOUNTS) * 0.3

    def test_empty_accounts(self, rng):
        assert burst_schedule([], start=0, rng=rng) == []

    def test_fewer_accounts_than_bursts(self, rng):
        plan = burst_schedule([1, 2], start=0, rng=rng, n_bursts=10)
        assert len(plan) == 2

    def test_start_offset(self, rng):
        plan = burst_schedule(ACCOUNTS, start=5 * DAY, rng=rng)
        assert min(t for t, _ in plan) >= 5 * DAY

    def test_invalid_args(self, rng):
        with pytest.raises(ValidationError):
            burst_schedule(ACCOUNTS, start=-1, rng=rng)
        with pytest.raises(ValidationError):
            burst_schedule(ACCOUNTS, start=0, rng=rng, spread_days=0)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30)
    def test_property_conservation(self, n):
        accounts = list(range(n))
        plan = burst_schedule(accounts, start=0, rng=RngStream(n, "p"))
        assert sorted(a for _, a in plan) == accounts


class TestTrickleSchedule:
    def test_conservation(self, rng):
        plan = trickle_schedule(ACCOUNTS, start=0, rng=rng)
        assert sorted(a for _, a in plan) == sorted(ACCOUNTS)

    def test_spread_over_duration(self, rng):
        plan = trickle_schedule(ACCOUNTS, start=0, rng=rng, duration_days=15.0)
        times = [t for t, _ in plan]
        assert max(times) < 15 * DAY
        # likes on at least 12 distinct days: a genuine trickle
        days_hit = {t // DAY for t in times}
        assert len(days_hit) >= 12

    def test_no_dominant_burst(self, rng):
        from repro.analysis.stats import max_count_in_window
        plan = trickle_schedule(ACCOUNTS, start=0, rng=rng, duration_days=15.0)
        times = [t for t, _ in plan]
        assert max_count_in_window(times, 2 * HOUR) < len(ACCOUNTS) * 0.15

    def test_empty(self, rng):
        assert trickle_schedule([], start=0, rng=rng) == []

    def test_sorted(self, rng):
        plan = trickle_schedule(ACCOUNTS, start=0, rng=rng)
        times = [t for t, _ in plan]
        assert times == sorted(times)

    def test_invalid_jitter(self, rng):
        with pytest.raises(ValidationError):
            trickle_schedule(ACCOUNTS, start=0, rng=rng, daily_jitter=1.0)
