"""Tests for repro.farms.topology."""

import networkx as nx
import pytest

from repro.farms.topology import (
    DenseCommunityTopology,
    FarmTopology,
    HubTopology,
    PairTripletTopology,
)
from repro.osn.network import SocialNetwork
from repro.osn.population import GLOBAL_AGE_WEIGHTS
from repro.osn.profile import Gender
from repro.util.distributions import Categorical
from repro.util.rng import RngStream
from repro.util.validation import ValidationError

AGE = Categorical(GLOBAL_AGE_WEIGHTS)


def make_accounts(net, n):
    return [
        net.create_user(gender=Gender.MALE, age=20, country="TR",
                        cohort="farm:X").user_id
        for i in range(n)
    ]


class TestPairTriplet:
    def test_component_sizes(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 300)
        PairTripletTopology(grouped_fraction=1.0).wire(net, accounts, rng)
        graph = net.graph.to_networkx(accounts)
        sizes = {len(c) for c in nx.connected_components(graph) if len(c) > 1}
        assert sizes <= {2, 3}

    def test_mostly_isolated_at_low_fraction(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 300)
        PairTripletTopology(grouped_fraction=0.08).wire(net, accounts, rng)
        isolated = sum(1 for a in accounts if net.graph.degree(a) == 0)
        assert isolated / len(accounts) > 0.8

    def test_zero_fraction_no_edges(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 50)
        edges = PairTripletTopology(grouped_fraction=0.0).wire(net, accounts, rng)
        assert edges == 0
        assert net.graph.edge_count == 0


class TestDenseCommunity:
    def test_single_connected_component(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 100)
        DenseCommunityTopology(ring_k=4, rewire_probability=0.1).wire(net, accounts, rng)
        graph = net.graph.to_networkx(accounts)
        components = list(nx.connected_components(graph))
        largest = max(len(c) for c in components)
        assert largest >= 90  # rewiring can orphan a couple of nodes

    def test_mean_degree_near_k(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 200)
        DenseCommunityTopology(ring_k=4).wire(net, accounts, rng)
        mean_degree = sum(net.graph.degree(a) for a in accounts) / len(accounts)
        assert 3.0 <= mean_degree <= 4.2

    def test_tiny_pool(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 2)
        DenseCommunityTopology().wire(net, accounts, rng)
        assert net.graph.are_friends(accounts[0], accounts[1])

    def test_odd_k_rejected(self):
        with pytest.raises(ValidationError):
            DenseCommunityTopology(ring_k=3)


class TestHubs:
    def test_hubs_never_in_accounts(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 60)
        hubs = HubTopology(hub_size=10, coverage=1.0).wire(
            net, accounts, rng, farm_name="X", age=AGE
        )
        assert hubs
        assert not (set(hubs) & set(accounts))

    def test_no_direct_account_edges(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 60)
        HubTopology(hub_size=10, coverage=1.0).wire(net, accounts, rng, "X", AGE)
        assert list(net.graph.edges_within(accounts)) == []

    def test_creates_mutual_friend_pairs(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 60)
        HubTopology(hub_size=10, coverage=1.0).wire(net, accounts, rng, "X", AGE)
        pairs = list(net.graph.mutual_friend_pairs(accounts))
        assert len(pairs) > 50

    def test_memberships_increase_density(self, rng):
        def pair_count(memberships):
            net = SocialNetwork()
            accounts = make_accounts(net, 80)
            HubTopology(
                hub_size=10, memberships_per_account=memberships, coverage=1.0
            ).wire(net, accounts, RngStream(9, "h"), "X", AGE)
            return len(list(net.graph.mutual_friend_pairs(accounts)))

        assert pair_count(2) > pair_count(1)

    def test_hub_cohort_is_farm(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 30)
        hubs = HubTopology(hub_size=10, coverage=1.0).wire(net, accounts, rng, "X", AGE)
        assert all(net.user(h).cohort == "farm:X" for h in hubs)

    def test_too_few_covered(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 1)
        assert HubTopology(coverage=1.0).wire(net, accounts, rng, "X", AGE) == []


class TestFarmTopology:
    def test_composition(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 100)
        topology = FarmTopology(
            pairs=PairTripletTopology(grouped_fraction=0.5),
            hubs=HubTopology(hub_size=8, coverage=0.8),
        )
        topology.wire_pool(net, accounts, rng, "X", AGE)
        assert len(list(net.graph.edges_within(accounts))) > 0
        assert len(list(net.graph.mutual_friend_pairs(accounts))) > 0

    def test_all_layers_optional(self, rng):
        net = SocialNetwork()
        accounts = make_accounts(net, 20)
        FarmTopology().wire_pool(net, accounts, rng, "X", AGE)
        assert net.graph.edge_count == 0
