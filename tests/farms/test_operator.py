"""Tests for repro.farms.operator."""

import pytest

from repro.farms.accounts import FakeAccountFactory, FarmAccountConfig
from repro.farms.base import REGION_USA, REGION_WORLDWIDE
from repro.farms.operator import FarmOperator
from repro.osn.network import SocialNetwork
from repro.osn.population import PopulationConfig, WorldBuilder
from repro.util.distributions import Categorical
from repro.util.rng import RngStream
from repro.util.validation import ValidationError

CONFIG = FarmAccountConfig(
    gender_female_share=0.4, age=Categorical({"18-24": 1.0})
)


@pytest.fixture()
def operator(rng):
    net = SocialNetwork()
    world = WorldBuilder(PopulationConfig.small()).build(net, rng.child("w"))
    factory = FakeAccountFactory(net, world.universe)
    return net, FarmOperator("op", net, factory, rng.child("op"), reuse_fraction=0.5)


class TestAccountsForOrder:
    def test_first_order_all_fresh(self, operator):
        net, op = operator
        accounts = op.accounts_for_order("B", CONFIG, REGION_USA, 40)
        assert len(accounts) == len(set(accounts)) == 40
        assert op.stats[REGION_USA].created == 40
        assert op.stats[REGION_USA].reused == 0

    def test_second_order_reuses(self, operator):
        net, op = operator
        first = set(op.accounts_for_order("B", CONFIG, REGION_USA, 40))
        second = set(op.accounts_for_order("B", CONFIG, REGION_USA, 40))
        overlap = first & second
        assert 10 <= len(overlap) <= 25  # reuse_fraction 0.5 of 40 = ~20

    def test_regions_isolated_by_default(self, operator):
        net, op = operator
        usa = set(op.accounts_for_order("B", CONFIG, REGION_USA, 30))
        world = set(op.accounts_for_order("B", CONFIG, REGION_WORLDWIDE, 30))
        assert not (usa & world)

    def test_shared_pool_when_not_regional(self, rng):
        net = SocialNetwork()
        world = WorldBuilder(PopulationConfig.small()).build(net, rng.child("w"))
        factory = FakeAccountFactory(net, world.universe)
        op = FarmOperator(
            "op", net, factory, rng.child("op"),
            reuse_fraction=0.5, regional_pools=False,
        )
        usa = set(op.accounts_for_order("B", CONFIG, REGION_USA, 40))
        worldwide = set(op.accounts_for_order("B", CONFIG, REGION_WORLDWIDE, 40))
        assert usa & worldwide

    def test_terminated_accounts_not_reused(self, operator):
        net, op = operator
        first = op.accounts_for_order("B", CONFIG, REGION_USA, 20)
        for account in first:
            net.terminate_account(account, time=0)
        second = op.accounts_for_order("B", CONFIG, REGION_USA, 20)
        assert not (set(first) & set(second))

    def test_cross_brand_reuse_same_operator(self, operator):
        """The ALMS mechanism: two brands, one pool."""
        net, op = operator
        brand_a = set(op.accounts_for_order("A.com", CONFIG, REGION_USA, 40))
        brand_b = set(op.accounts_for_order("B.com", CONFIG, REGION_USA, 40))
        shared = brand_a & brand_b
        assert shared
        # reused accounts keep brand A's cohort: the tell the paper saw
        assert all(net.user(a).cohort == "farm:A.com" for a in shared)

    def test_invalid_reuse_fraction(self, operator):
        net, _ = operator
        with pytest.raises(ValidationError):
            FarmOperator("x", net, None, RngStream(1), reuse_fraction=1.5)

    def test_deterministic(self, rng):
        def run(seed):
            net = SocialNetwork()
            world = WorldBuilder(PopulationConfig.small()).build(
                net, RngStream(seed, "w")
            )
            factory = FakeAccountFactory(net, world.universe)
            op = FarmOperator("op", net, factory, RngStream(seed, "op"))
            op.accounts_for_order("B", CONFIG, REGION_USA, 30)
            return [net.user(a).country for a in op.pool(REGION_USA)]

        assert run(3) == run(3)
