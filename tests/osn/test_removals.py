"""Tests for like removal and enforcement purges."""

import pytest

from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.osn.termination import TerminationPolicy, TerminationSweep
from repro.util.rng import RngStream


@pytest.fixture()
def world():
    net = SocialNetwork()
    page = net.create_page("P", category="honeypot")
    users = []
    for i in range(5):
        user = net.create_user(gender=Gender.MALE, age=20, country="US",
                               cohort="farm:X")
        net.like_page(user.user_id, page.page_id, time=i * 100)
        users.append(user)
    return net, page, users


class TestRemoveLike:
    def test_removes_from_current_lists(self, world):
        net, page, users = world
        assert net.remove_like(users[0].user_id, page.page_id, time=1000)
        assert net.page_like_count(page.page_id) == 4
        assert page.page_id not in net.user_liked_page_ids(users[0].user_id)

    def test_history_preserved(self, world):
        net, page, users = world
        net.remove_like(users[0].user_id, page.page_id, time=1000)
        historical = [e.user_id for e in net.likes.for_page(page.page_id)]
        assert users[0].user_id in historical

    def test_removal_event_recorded(self, world):
        net, page, users = world
        net.remove_like(users[0].user_id, page.page_id, time=1000)
        removals = net.likes.removals_for_page(page.page_id)
        assert len(removals) == 1
        assert removals[0].user_id == users[0].user_id
        assert removals[0].time == 1000

    def test_removing_nonexistent_like_returns_false(self, world):
        net, page, _ = world
        other = net.create_user(gender=Gender.FEMALE, age=30, country="US")
        assert not net.remove_like(other.user_id, page.page_id, time=5)
        assert net.likes.removal_count == 0

    def test_can_relike_after_removal(self, world):
        net, page, users = world
        net.remove_like(users[0].user_id, page.page_id, time=1000)
        assert net.like_page(users[0].user_id, page.page_id, time=2000)
        assert net.page_like_count(page.page_id) == 5


class TestTerminationPurge:
    def test_purge_strips_likes(self, world):
        net, page, users = world
        net.terminate_account(users[0].user_id, time=500, purge_likes=True)
        assert net.page_like_count(page.page_id) == 4
        assert len(net.likes.removals_for_page(page.page_id)) == 1

    def test_no_purge_keeps_likes(self, world):
        net, page, users = world
        net.terminate_account(users[0].user_id, time=500, purge_likes=False)
        assert net.page_like_count(page.page_id) == 5

    def test_sweep_purges_when_policy_says_so(self, world):
        net, page, _ = world
        policy = TerminationPolicy(base_rates={"farm:X": 1.0}, purge_likes=True)
        TerminationSweep(policy).run(net, [page.page_id], RngStream(1), time=10_000)
        assert net.page_like_count(page.page_id) == 0
        assert len(net.likes.removals_for_page(page.page_id)) == 5

    def test_sweep_respects_purge_off(self, world):
        net, page, _ = world
        policy = TerminationPolicy(base_rates={"farm:X": 1.0}, purge_likes=False)
        TerminationSweep(policy).run(net, [page.page_id], RngStream(1), time=10_000)
        assert net.page_like_count(page.page_id) == 5


class TestStudyRemovalAudit:
    def test_removed_counts_recorded(self, small_dataset):
        removed = {
            campaign_id: record.removed_like_count
            for campaign_id, record in small_dataset.campaigns.items()
        }
        # every terminated liker's honeypot like was purged
        for campaign_id, record in small_dataset.campaigns.items():
            assert removed[campaign_id] >= len(record.terminated_liker_ids)

    def test_burst_farms_lose_more_likes(self, small_dataset):
        from repro.analysis.summary import removed_likes_by_campaign
        removed = removed_likes_by_campaign(small_dataset)
        burst_total = sum(
            removed[c] for c in ("SF-ALL", "SF-USA", "AL-ALL", "AL-USA", "MS-USA")
        )
        assert burst_total > removed["BL-USA"]
