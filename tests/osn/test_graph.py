"""Tests for repro.osn.graph."""

import pytest
from hypothesis import given, strategies as st

from repro.osn.graph import FriendshipGraph
from repro.util.validation import ValidationError


class TestFriendshipGraph:
    def test_add_friendship_symmetric(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        assert graph.are_friends(1, 2)
        assert graph.are_friends(2, 1)

    def test_idempotent_edges(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(2, 1)
        assert graph.edge_count == 1

    def test_self_loop_rejected(self):
        graph = FriendshipGraph()
        with pytest.raises(ValidationError):
            graph.add_friendship(1, 1)

    def test_degree(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(1, 3)
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1
        assert graph.degree(99) == 0

    def test_neighbors_copy(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        neighbors = graph.neighbors(1)
        neighbors.add(99)
        assert graph.neighbors(1) == {2}

    def test_remove_user(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(1, 3)
        graph.remove_user(1)
        assert graph.edge_count == 0
        assert not graph.are_friends(2, 1)
        assert 1 not in graph

    def test_two_hop(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(2, 3)
        graph.add_friendship(3, 4)
        assert graph.two_hop_neighbors(1) == {3}
        assert graph.two_hop_neighbors(2) == {4}

    def test_two_hop_excludes_direct_and_self(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(1, 3)
        graph.add_friendship(2, 3)  # triangle
        assert graph.two_hop_neighbors(1) == set()

    def test_edges_each_once(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(2, 3)
        assert sorted(graph.edges()) == [(1, 2), (2, 3)]

    def test_edges_within(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(2, 3)
        graph.add_friendship(3, 4)
        assert sorted(graph.edges_within({1, 2, 3})) == [(1, 2), (2, 3)]

    def test_mutual_friend_pairs(self):
        graph = FriendshipGraph()
        # hub 100 connects likers 1, 2, 3; liker 4 is isolated
        for liker in (1, 2, 3):
            graph.add_friendship(liker, 100)
        pairs = set(graph.mutual_friend_pairs([1, 2, 3, 4]))
        assert pairs == {(1, 2), (1, 3), (2, 3)}

    def test_mutual_friend_pairs_direct_edge_no_mutual(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        assert set(graph.mutual_friend_pairs([1, 2])) == set()

    def test_to_networkx_full(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_user(3)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 1

    def test_to_networkx_subgraph(self):
        graph = FriendshipGraph()
        graph.add_friendship(1, 2)
        graph.add_friendship(2, 3)
        sub = graph.to_networkx(users=[1, 2])
        assert sub.number_of_edges() == 1
        assert set(sub.nodes) == {1, 2}

    @given(st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(lambda e: e[0] != e[1]),
        max_size=100,
    ))
    def test_property_degree_sum_is_twice_edges(self, edge_list):
        graph = FriendshipGraph()
        for a, b in edge_list:
            graph.add_friendship(a, b)
        nodes = {n for e in edge_list for n in e}
        assert sum(graph.degree(n) for n in nodes) == 2 * graph.edge_count
