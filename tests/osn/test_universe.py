"""Tests for repro.osn.universe."""

import pytest

from repro.osn.universe import (
    CLICKWORKER_MIX,
    DEFAULT_SPAM_KEYS,
    SHARED_SPAM_KEY,
    LikeMix,
    PageUniverse,
    build_universe,
)
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


@pytest.fixture()
def universe(rng):
    return build_universe(
        page_ids=list(range(1000, 1400)),
        spam_page_ids=list(range(5000, 5120)),
        countries=["US", "IN", "TR"],
        country_weights=[5.0, 3.0, 2.0],
        rng=rng.child("universe"),
    )


class TestLikeMix:
    def test_counts_sum(self):
        mix = LikeMix(global_frac=0.5, regional_frac=0.3, spam_frac=0.2)
        counts = mix.counts(100)
        assert sum(counts.values()) == 100

    def test_over_one_rejected(self):
        with pytest.raises(ValidationError):
            LikeMix(global_frac=0.6, regional_frac=0.3, spam_frac=0.2)

    def test_remainder_goes_global(self):
        mix = LikeMix(global_frac=0.0, regional_frac=0.3, spam_frac=0.2)
        counts = mix.counts(10)
        assert counts["global"] == 5


class TestBuildUniverse:
    def test_partition_complete_and_disjoint(self, universe):
        global_pages = set(universe.global_pages)
        regional = [set(universe.regional_pages(c)) for c in ("US", "IN", "TR")]
        spam = set(universe.spam_pages)
        everything = set(universe.all_page_ids)
        assert everything == global_pages | spam | set().union(*regional)
        assert len(everything) == 400 + 120
        for seg in regional:
            assert not (seg & global_pages)

    def test_regional_sizes_proportional(self, universe):
        us = len(universe.regional_pages("US"))
        tr = len(universe.regional_pages("TR"))
        assert us > tr

    def test_spam_segments(self, universe):
        shared = universe.spam_segment(SHARED_SPAM_KEY)
        assert len(shared) > 0
        for key in DEFAULT_SPAM_KEYS:
            assert len(universe.spam_segment(key)) > 0

    def test_unknown_regional_empty(self, universe):
        assert universe.regional_pages("ZZ") == []

    def test_needs_spam_pages(self, rng):
        with pytest.raises(ValidationError):
            build_universe(
                page_ids=[1, 2, 3], spam_page_ids=[], countries=[],
                country_weights=[], rng=rng,
            )


class TestSampleLikes:
    def test_distinct_and_sized(self, universe, rng):
        likes = universe.sample_likes(rng, 60, CLICKWORKER_MIX, "US", spam_key="clickworker")
        assert len(likes) == 60
        assert len(set(likes)) == 60

    def test_zero(self, universe, rng):
        assert universe.sample_likes(rng, 0, CLICKWORKER_MIX, "US") == []

    def test_regional_pages_used(self, universe, rng):
        mix = LikeMix(global_frac=0.0, regional_frac=1.0, spam_frac=0.0)
        likes = universe.sample_likes(rng, 10, mix, "TR")
        assert set(likes) <= set(universe.regional_pages("TR"))

    def test_unknown_country_spills_to_global(self, universe, rng):
        mix = LikeMix(global_frac=0.0, regional_frac=1.0, spam_frac=0.0)
        likes = universe.sample_likes(rng, 10, mix, "ZZ")
        assert set(likes) <= set(universe.global_pages)

    def test_spam_key_prefers_own_segment(self, universe, rng):
        mix = LikeMix(global_frac=0.0, regional_frac=0.0, spam_frac=1.0)
        likes = universe.sample_likes(rng, 20, mix, "US", spam_key="alms")
        own = set(universe.spam_segment("alms"))
        shared = set(universe.spam_segment(SHARED_SPAM_KEY))
        assert set(likes) <= own | shared
        assert len(set(likes) & own) > 0

    def test_no_spam_key_uses_shared_only(self, universe, rng):
        mix = LikeMix(global_frac=0.0, regional_frac=0.0, spam_frac=1.0)
        likes = universe.sample_likes(rng, 10, mix, "US")
        shared = set(universe.spam_segment(SHARED_SPAM_KEY))
        assert set(likes) <= shared

    def test_two_operators_disjoint_own_segments(self, universe, rng):
        assert not (
            set(universe.spam_segment("alms")) & set(universe.spam_segment("socialformula"))
        )
