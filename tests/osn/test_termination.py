"""Tests for repro.osn.termination."""

import pytest

from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.osn.termination import TerminationPolicy, TerminationSweep
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


def make_world(n_likers=60, cohort="farm:X", burst=False):
    """A page with likers; burst=True packs all likes into one minute."""
    net = SocialNetwork()
    page = net.create_page("P", category="honeypot")
    for i in range(n_likers):
        user = net.create_user(gender=Gender.MALE, age=20, country="US", cohort=cohort)
        time = 0 if burst else i * 600  # 10-hour gaps when not bursting
        net.like_page(user.user_id, page.page_id, time=time)
    return net, page


class TestTerminationPolicy:
    def test_hazard_base(self):
        policy = TerminationPolicy(base_rates={"farm:X": 0.2}, default_rate=0.01)
        assert policy.hazard("farm:X", liked_in_burst=False) == 0.2
        assert policy.hazard("unknown", liked_in_burst=False) == 0.01

    def test_burst_multiplier(self):
        policy = TerminationPolicy(base_rates={"farm:X": 0.2}, burst_multiplier=3.0)
        assert policy.hazard("farm:X", liked_in_burst=True) == pytest.approx(0.6)

    def test_hazard_capped_at_one(self):
        policy = TerminationPolicy(base_rates={"farm:X": 0.8}, burst_multiplier=5.0)
        assert policy.hazard("farm:X", liked_in_burst=True) == 1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValidationError):
            TerminationPolicy(base_rates={"x": 1.5})


class TestBurstDetection:
    def test_burst_likers_flagged(self):
        net, page = make_world(n_likers=60, burst=True)
        sweep = TerminationSweep(TerminationPolicy(burst_threshold=50))
        flagged = sweep.burst_likers(net, page.page_id)
        assert len(flagged) == 60

    def test_trickle_likers_not_flagged(self):
        net, page = make_world(n_likers=60, burst=False)
        sweep = TerminationSweep(TerminationPolicy(burst_threshold=50))
        assert sweep.burst_likers(net, page.page_id) == set()

    def test_below_threshold_not_flagged(self):
        net, page = make_world(n_likers=30, burst=True)
        sweep = TerminationSweep(TerminationPolicy(burst_threshold=50))
        assert sweep.burst_likers(net, page.page_id) == set()


class TestSweep:
    def test_high_hazard_terminates_most(self):
        net, page = make_world(n_likers=100, cohort="farm:X")
        policy = TerminationPolicy(base_rates={"farm:X": 0.9})
        terminated = TerminationSweep(policy).run(
            net, [page.page_id], RngStream(1), time=100_000
        )
        assert len(terminated) > 70
        assert all(net.user(u).is_terminated for u in terminated)

    def test_zero_hazard_terminates_none(self):
        net, page = make_world(n_likers=50, cohort="organic")
        policy = TerminationPolicy(base_rates={"organic": 0.0}, default_rate=0.0)
        terminated = TerminationSweep(policy).run(
            net, [page.page_id], RngStream(1), time=100_000
        )
        assert terminated == []

    def test_burst_increases_termination(self):
        policy = TerminationPolicy(
            base_rates={"farm:X": 0.05}, burst_multiplier=8.0, burst_threshold=50
        )

        def count(burst):
            net, page = make_world(n_likers=200, burst=burst)
            return len(
                TerminationSweep(policy).run(net, [page.page_id], RngStream(3), 10**6)
            )

        assert count(burst=True) > count(burst=False)

    def test_already_terminated_skipped(self):
        net, page = make_world(n_likers=10)
        first = net.page_liker_ids(page.page_id)[0]
        net.terminate_account(first, time=0)
        policy = TerminationPolicy(base_rates={"farm:X": 1.0})
        terminated = TerminationSweep(policy).run(net, [page.page_id], RngStream(1), 10)
        assert first not in terminated
        assert len(terminated) == 9

    def test_deterministic(self):
        def run(seed):
            net, page = make_world(n_likers=100)
            policy = TerminationPolicy(base_rates={"farm:X": 0.3})
            return TerminationSweep(policy).run(net, [page.page_id], RngStream(seed), 10)

        assert run(5) == run(5)
