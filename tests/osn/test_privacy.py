"""Tests for repro.osn.privacy and repro.osn.directory."""

import pytest

from repro.osn.directory import PublicDirectory
from repro.osn.network import SocialNetwork
from repro.osn.privacy import PrivacyPolicy
from repro.osn.profile import Gender, UserProfile
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


def profile(**kwargs):
    defaults = dict(user_id=1, gender=Gender.FEMALE, age=30, country="US")
    defaults.update(kwargs)
    return UserProfile(**defaults)


class TestPrivacyPolicy:
    def test_public_friend_list_visible(self):
        policy = PrivacyPolicy()
        assert policy.can_view_friend_list(profile(friend_list_public=True))

    def test_private_friend_list_hidden(self):
        policy = PrivacyPolicy()
        assert not policy.can_view_friend_list(profile(friend_list_public=False))

    def test_terminated_profile_hidden(self):
        policy = PrivacyPolicy()
        locked = profile(friend_list_public=True, terminated_at=10)
        assert not policy.can_view_friend_list(locked)
        assert not policy.can_view_page_likes(locked)

    def test_page_likes_public_for_live_accounts(self):
        policy = PrivacyPolicy()
        assert policy.can_view_page_likes(profile(friend_list_public=False))

    def test_visible_friends_all_or_nothing(self):
        policy = PrivacyPolicy()
        friends = {10, 11, 12}
        assert policy.visible_friends(profile(friend_list_public=True), friends) == friends
        assert policy.visible_friends(profile(friend_list_public=False), friends) == set()


class TestPublicDirectory:
    def make_network(self):
        net = SocialNetwork()
        listed = [
            net.create_user(gender=Gender.MALE, age=30, country="US", searchable=True)
            for _ in range(10)
        ]
        net.create_user(gender=Gender.MALE, age=30, country="US", searchable=False)
        return net, listed

    def test_only_searchable_listed(self):
        net, listed = self.make_network()
        directory = PublicDirectory(net)
        assert directory.searchable_user_ids() == sorted(p.user_id for p in listed)

    def test_terminated_removed(self):
        net, listed = self.make_network()
        net.terminate_account(listed[0].user_id, time=0)
        directory = PublicDirectory(net)
        assert listed[0].user_id not in directory.searchable_user_ids()

    def test_sample_distinct(self):
        net, _ = self.make_network()
        sample = PublicDirectory(net).sample_users(RngStream(1), 5)
        assert len(sample) == len(set(sample)) == 5

    def test_sample_too_large(self):
        net, _ = self.make_network()
        with pytest.raises(ValidationError):
            PublicDirectory(net).sample_users(RngStream(1), 11)
