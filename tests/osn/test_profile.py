"""Tests for repro.osn.profile and repro.osn.events."""

import pytest
from hypothesis import given, strategies as st

from repro.osn.events import LikeEvent, LikeLog
from repro.osn.ids import IdAllocator
from repro.osn.profile import (
    AGE_BRACKETS,
    Gender,
    UserProfile,
    age_bracket,
    bracket_midpoint_age,
)
from repro.util.validation import ValidationError


class TestAgeBracket:
    @pytest.mark.parametrize("age,expected", [
        (13, "13-17"), (17, "13-17"), (18, "18-24"), (24, "18-24"),
        (25, "25-34"), (34, "25-34"), (35, "35-44"), (44, "35-44"),
        (45, "45-54"), (54, "45-54"), (55, "55+"), (90, "55+"),
    ])
    def test_boundaries(self, age, expected):
        assert age_bracket(age) == expected

    def test_underage_rejected(self):
        with pytest.raises(ValidationError):
            age_bracket(12)

    @given(st.integers(min_value=13, max_value=120))
    def test_property_always_a_known_bracket(self, age):
        assert age_bracket(age) in AGE_BRACKETS

    def test_midpoint_within_bracket(self):
        for bracket in AGE_BRACKETS:
            assert age_bracket(bracket_midpoint_age(bracket)) == bracket

    def test_midpoint_unknown_rejected(self):
        with pytest.raises(ValidationError):
            bracket_midpoint_age("1-2")


class TestUserProfile:
    def make(self, **kwargs):
        defaults = dict(user_id=1, gender=Gender.MALE, age=30, country="US")
        defaults.update(kwargs)
        return UserProfile(**defaults)

    def test_defaults(self):
        profile = self.make()
        assert profile.cohort == "organic"
        assert not profile.is_fake
        assert not profile.is_terminated
        assert profile.home_town == "US"

    def test_fake_cohorts(self):
        assert self.make(cohort="clickworker").is_fake
        farm = self.make(cohort="farm:BoostLikes.com")
        assert farm.is_fake
        assert farm.is_farm_account
        assert farm.farm_name == "BoostLikes.com"

    def test_farm_name_none_for_non_farm(self):
        assert self.make().farm_name is None

    def test_age_bracket_property(self):
        assert self.make(age=20).age_bracket == "18-24"

    def test_underage_rejected(self):
        with pytest.raises(ValidationError):
            self.make(age=10)

    def test_empty_country_rejected(self):
        with pytest.raises(ValidationError):
            self.make(country="")

    def test_negative_background_counts_rejected(self):
        with pytest.raises(ValidationError):
            self.make(background_friend_count=-1)
        with pytest.raises(ValidationError):
            self.make(background_like_count=-5)


class TestIdAllocator:
    def test_monotone(self):
        alloc = IdAllocator(start=100)
        assert [alloc.allocate() for _ in range(3)] == [100, 101, 102]
        assert alloc.allocated == 103


class TestLikeLog:
    def test_record_and_query(self):
        log = LikeLog()
        log.record(LikeEvent(user_id=1, page_id=10, time=5))
        log.record(LikeEvent(user_id=2, page_id=10, time=6))
        log.record(LikeEvent(user_id=1, page_id=11, time=7))
        assert len(log) == 3
        assert [e.user_id for e in log.for_page(10)] == [1, 2]
        assert [e.page_id for e in log.for_user(1)] == [10, 11]
        assert log.page_like_times(10) == [5, 6]

    def test_out_of_order_rejected(self):
        log = LikeLog()
        log.record(LikeEvent(user_id=1, page_id=10, time=5))
        with pytest.raises(ValidationError):
            log.record(LikeEvent(user_id=2, page_id=10, time=4))

    def test_different_pages_independent_order(self):
        log = LikeLog()
        log.record(LikeEvent(user_id=1, page_id=10, time=5))
        log.record(LikeEvent(user_id=1, page_id=11, time=3))  # fine: other page
        assert len(log) == 2

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            LikeEvent(user_id=1, page_id=1, time=-1)

    def test_empty_queries(self):
        log = LikeLog()
        assert log.for_page(1) == ()
        assert log.for_user(1) == ()
        assert log.page_like_times(1) == []
