"""Scalar-vs-bulk equivalence for the OSN write paths.

The bulk APIs (`like_pages_bulk`, `like_page_many`, `add_friendships_bulk`,
`LikeLog.record_many`) exist purely for speed; their contract is that final
network state is identical to looping the scalar calls in the same order.
These tests pin that contract at the unit level and end-to-end: a seeded
small study must produce the identical dataset whether the generators write
through the bulk fast path or through per-item scalar calls.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.osn.universe as universe_module
from repro.honeypot.study import HoneypotStudy, StudyConfig
from repro.osn.events import LikeEvent, LikeLog
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.osn.universe import (
    CLICKWORKER_MIX,
    ORGANIC_MIX,
    SHARED_SPAM_KEY,
    PageUniverse,
)
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


def _network_with(n_users: int, n_pages: int) -> tuple:
    network = SocialNetwork()
    users = [
        network.create_user(gender=Gender.FEMALE, age=30, country="US").user_id
        for _ in range(n_users)
    ]
    pages = [network.create_page(f"p{i}").page_id for i in range(n_pages)]
    return network, users, pages


def _like_state(network: SocialNetwork, users, pages) -> tuple:
    return (
        [network.page_liker_ids(p) for p in pages],
        [sorted(network.user_liked_page_ids(u)) for u in users],
        [network.likes.for_page(p) for p in pages],
        [network.likes.for_user(u) for u in users],
        len(network.likes),
    )


class TestLikePagesBulk:
    def test_matches_scalar_loop(self):
        scalar_net, users, pages = _network_with(3, 10)
        bulk_net, bulk_users, bulk_pages = _network_with(3, 10)
        batches = [pages[0:6], pages[3:9], pages[2:10:2]]
        for user_id, batch in zip(users, batches):
            for page_id in batch:
                scalar_net.like_page(user_id, page_id, time=4)
        for user_id, batch in zip(bulk_users, batches):
            bulk_net.like_pages_bulk(user_id, batch, time=4)
        assert _like_state(scalar_net, users, pages) == _like_state(
            bulk_net, bulk_users, bulk_pages
        )

    def test_skips_duplicates_and_already_liked(self):
        network, (alice, *_), pages = _network_with(1, 4)
        network.like_page(alice, pages[0], time=0)
        added = network.like_pages_bulk(
            alice, [pages[0], pages[1], pages[1], pages[2]], time=1
        )
        assert added == 2
        assert sorted(network.user_liked_page_ids(alice)) == sorted(pages[:3])
        # the pre-existing like kept its original timestamp
        assert network.likes.for_page(pages[0])[0].time == 0

    def test_rejects_unknown_page_and_bad_time(self):
        network, (alice, *_), pages = _network_with(1, 2)
        with pytest.raises(ValidationError):
            network.like_pages_bulk(alice, [pages[0], 424242], time=0)
        with pytest.raises(ValidationError):
            network.like_pages_bulk(alice, pages, time=-1)

    def test_failed_batch_applies_nothing(self):
        # A rejected batch must not leave the liker sets and the like log
        # disagreeing: either every valid page before the bad one is fully
        # recorded, or none is.  We guarantee the stronger form — nothing.
        network, (alice, *_), pages = _network_with(1, 3)
        with pytest.raises(ValidationError):
            network.like_pages_bulk(alice, [pages[0], 424242, pages[1]], time=0)
        assert network.user_liked_page_ids(alice) == set()
        assert all(network.page_liker_ids(p) == [] for p in pages)
        assert len(network.likes) == 0

    def test_rejects_terminated_user(self):
        network, (alice, *_), pages = _network_with(1, 2)
        network.terminate_account(alice, time=5)
        with pytest.raises(ValidationError):
            network.like_pages_bulk(alice, pages, time=6)

    def test_like_page_many_matches_scalar(self):
        scalar_net, users, pages = _network_with(2, 5)
        bulk_net, bulk_users, bulk_pages = _network_with(2, 5)
        events = [
            (0, 0, 1), (1, 0, 1), (0, 1, 2), (0, 0, 3),  # last is a repeat
        ]
        for u, p, t in events:
            scalar_net.like_page(users[u], pages[p], time=t)
        added = bulk_net.like_page_many(
            LikeEvent(user_id=bulk_users[u], page_id=bulk_pages[p], time=t)
            for u, p, t in events
        )
        assert added == 3
        assert _like_state(scalar_net, users, pages) == _like_state(
            bulk_net, bulk_users, bulk_pages
        )


class TestRecordMany:
    def test_matches_scalar_records(self):
        scalar_log, bulk_log = LikeLog(), LikeLog()
        for page_id in (10, 11, 12):
            scalar_log.record(LikeEvent(user_id=1, page_id=page_id, time=2))
        bulk_log.record_many(1, [10, 11, 12], 2)
        for page_id in (10, 11, 12):
            assert scalar_log.for_page(page_id) == bulk_log.for_page(page_id)
        assert scalar_log.for_user(1) == bulk_log.for_user(1)
        assert len(scalar_log) == len(bulk_log) == 3

    def test_rejects_out_of_order_and_negative_time(self):
        log = LikeLog()
        log.record_many(1, [10], 5)
        with pytest.raises(ValidationError):
            log.record_many(2, [10], 4)
        with pytest.raises(ValidationError):
            log.record_many(2, [11], -1)

    def test_failed_batch_leaves_log_untouched(self):
        log = LikeLog()
        log.record_many(1, [10], 5)
        with pytest.raises(ValidationError):
            # page 11 would be fine; page 10 violates chronology
            log.record_many(2, [11, 10], 4)
        assert log.for_page(11) == ()
        assert log.for_user(2) == ()
        assert len(log) == 1


class TestRecordArrays:
    """The cohort-wide columnar append is state-identical to scalar records."""

    def test_matches_scalar_records(self):
        scalar_log, bulk_log = LikeLog(), LikeLog()
        users = np.array([7, 7, 8, 9, 9, 9], dtype=np.int64)
        pages = np.array([10, 11, 10, 12, 11, 13], dtype=np.int64)
        for user_id, page_id in zip(users.tolist(), pages.tolist()):
            scalar_log.record(LikeEvent(user_id=user_id, page_id=page_id, time=3))
        bulk_log.record_arrays(users, pages, 3)
        for page_id in (10, 11, 12, 13):
            assert scalar_log.for_page(page_id) == bulk_log.for_page(page_id)
        for user_id in (7, 8, 9):
            assert scalar_log.for_user(user_id) == bulk_log.for_user(user_id)
        assert len(scalar_log) == len(bulk_log) == 6

    def test_out_of_order_batch_raises_and_applies_nothing(self):
        log = LikeLog()
        log.record(LikeEvent(user_id=1, page_id=10, time=5))
        with pytest.raises(ValidationError):
            # page 11 would be fine; page 10 violates per-page chronology
            log.record_arrays(
                np.array([2, 2], dtype=np.int64),
                np.array([11, 10], dtype=np.int64),
                4,
            )
        assert log.for_page(11) == ()
        assert log.for_user(2) == ()
        assert len(log) == 1

    def test_equal_time_batch_accepted_below_high_water_mark(self):
        # time == a page's newest event is chronological; the vectorised
        # slow-path check (time < _max_time) must not over-reject it.
        log = LikeLog()
        log.record(LikeEvent(user_id=1, page_id=10, time=4))
        log.record(LikeEvent(user_id=1, page_id=12, time=9))
        log.record_arrays(
            np.array([2, 2], dtype=np.int64),
            np.array([10, 11], dtype=np.int64),
            4,
        )
        assert len(log) == 4
        assert [e.user_id for e in log.for_page(10)] == [1, 2]


class TestProfileStoreViews:
    """ProfileView reads are equivalent to the written attributes/columns."""

    def test_views_match_writes_and_columns(self):
        network = SocialNetwork()
        specs = [
            (Gender.FEMALE, 19, "US", True, "organic"),
            (Gender.MALE, 44, "IN", False, "clickworker"),
            (Gender.MALE, 31, "EG", True, "farm:X"),
            (Gender.FEMALE, 67, "US", False, "organic"),
        ]
        ids = [
            network.create_user(
                gender=g, age=a, country=c, friend_list_public=p, cohort=coh
            ).user_id
            for g, a, c, p, coh in specs
        ]
        for user_id, (g, a, c, p, coh) in zip(ids, specs):
            view = network.user(user_id)
            assert (view.gender, view.age, view.country) == (g, a, c)
            assert view.friend_list_public is p
            assert view.cohort == coh
            assert view.terminated_at is None and not view.is_terminated
        # object identity: the store caches one view per row
        assert network.user(ids[0]) is network.user(ids[0])
        # column reads agree with per-view reads
        store = network.profiles
        assert store.ages().tolist() == [a for _, a, _, _, _ in specs]
        assert [store.strings.value(c) for c in store.country_codes()] == [
            c for _, _, c, _, _ in specs
        ]
        assert store.friend_list_public_mask().tolist() == [
            p for _, _, _, p, _ in specs
        ]

    def test_termination_and_background_counts_round_trip(self):
        network = SocialNetwork()
        user = network.create_user(gender=Gender.MALE, age=25, country="TR")
        user.background_friend_count = 321
        user.background_like_count = 55
        assert user.background_friend_count == 321
        assert user.background_like_count == 55
        network.terminate_account(user.user_id, time=17)
        assert user.is_terminated
        assert user.terminated_at == 17
        assert network.profiles.alive_mask().tolist() == [False]


class TestFriendshipGraphCSR:
    """CSR graph queries match a plain dict-of-sets reference."""

    def _reference(self, edges):
        ref = {}
        for a, b in edges:
            ref.setdefault(a, set()).add(b)
            ref.setdefault(b, set()).add(a)
        return ref

    def test_queries_match_reference(self):
        network, users, _ = _network_with(40, 1)
        generator = np.random.default_rng(4821)
        pairs = set()
        while len(pairs) < 120:
            a, b = generator.integers(0, len(users), size=2).tolist()
            if a != b:
                pairs.add((min(a, b), max(a, b)))
        pairs = sorted(pairs)
        edges = [(users[a], users[b]) for a, b in pairs]
        # half through the array fast path (compiled core), half through
        # scalar adds (overlay) — queries must merge both
        half = len(edges) // 2
        network.add_friendships_arrays(
            np.array([a for a, _ in edges[:half]], dtype=np.int64),
            np.array([b for _, b in edges[:half]], dtype=np.int64),
        )
        for a, b in edges[half:]:
            network.add_friendship(a, b)
        ref = self._reference(edges)
        graph = network.graph
        assert graph.edge_count == len(edges)
        for user_id in users:
            assert graph.neighbors(user_id) == ref.get(user_id, set())
            assert graph.degree(user_id) == len(ref.get(user_id, set()))
        for a, b in edges[:20]:
            assert graph.are_friends(a, b) and graph.are_friends(b, a)
        subset = users[:15]
        expected_within = {
            (min(a, b), max(a, b))
            for a, b in edges
            if a in set(subset) and b in set(subset)
        }
        got_within = {
            (min(int(a), int(b)), max(int(a), int(b)))
            for a, b in graph.edges_within(subset)
        }
        assert got_within == expected_within
        probe = users[0]
        expected_two_hop = set()
        for n in ref.get(probe, set()):
            expected_two_hop |= ref.get(n, set())
        expected_two_hop -= ref.get(probe, set())
        expected_two_hop -= {probe}
        assert graph.two_hop_neighbors(probe) == expected_two_hop


def _test_universe() -> PageUniverse:
    base = 9_500_000
    return PageUniverse(
        global_pages=range(base, base + 40),
        regional_pages={
            "US": range(base + 40, base + 70),
            "IN": range(base + 70, base + 90),
        },
        spam_segments={
            SHARED_SPAM_KEY: range(base + 90, base + 110),
            "clickworker": range(base + 110, base + 125),
        },
        popularity_exponent=0.9,
    )


class TestBatchedSamplerEquivalence:
    """sample_likes_many is draw-for-draw identical to the scalar loop."""

    CASES = [
        (ORGANIC_MIX, None),
        (CLICKWORKER_MIX, "clickworker"),
    ]

    @pytest.mark.parametrize("mix,spam_key", CASES)
    def test_bit_identical_to_scalar_loop(self, mix, spam_key):
        universe = _test_universe()
        totals = [0, 3, 17, 30, 8, 1, 25, 12]
        countries = ["US", "IN", "US", "FR", "IN", "US", "FR", "IN"]
        batched = universe.sample_likes_many(
            RngStream(777, "t"), totals, mix, countries, spam_key=spam_key
        )
        scalar_rng = RngStream(777, "t")
        scalar = [
            universe.sample_likes_array(
                scalar_rng, total, mix, country, spam_key=spam_key
            )
            for total, country in zip(totals, countries)
        ]
        assert len(batched) == len(scalar)
        for got, expected in zip(batched, scalar):
            assert np.array_equal(got, expected)

    def test_chunk_boundaries_do_not_change_draws(self, monkeypatch):
        # Force many tiny chunks: per-user plans must split the uniform
        # blocks exactly where the one-big-block path would.
        universe = _test_universe()
        totals = [12, 30, 5, 22, 9, 18]
        countries = ["US", "IN", "FR", "US", "IN", "US"]
        unchunked = universe.sample_likes_many(
            RngStream(31, "c"), totals, CLICKWORKER_MIX, countries,
            spam_key="clickworker",
        )
        monkeypatch.setattr(universe_module, "_DRAW_CHUNK", 64)
        chunked = universe.sample_likes_many(
            RngStream(31, "c"), totals, CLICKWORKER_MIX, countries,
            spam_key="clickworker",
        )
        for got, expected in zip(chunked, unchunked):
            assert np.array_equal(got, expected)


class TestAddFriendshipsBulk:
    def test_matches_scalar_loop(self):
        scalar_net, users, _ = _network_with(6, 1)
        bulk_net, bulk_users, _ = _network_with(6, 1)
        pairs = [(0, 1), (1, 2), (0, 1), (3, 4), (2, 0)]
        for a, b in pairs:
            scalar_net.add_friendship(users[a], users[b])
        added = bulk_net.add_friendships_bulk(
            (bulk_users[a], bulk_users[b]) for a, b in pairs
        )
        assert added == 4  # one duplicate pair
        assert scalar_net.graph.edge_count == bulk_net.graph.edge_count
        # both networks allocate identical user ids, so edges compare directly
        for user_id in users:
            assert scalar_net.graph.neighbors(user_id) == bulk_net.graph.neighbors(
                user_id
            )

    def test_rejects_self_loops_and_unknown_users(self):
        network, users, _ = _network_with(2, 1)
        with pytest.raises(ValidationError):
            network.add_friendships_bulk([(users[0], users[0])])
        with pytest.raises(ValidationError):
            network.add_friendships_bulk([(users[0], 999999)])

    def test_failed_batch_adds_no_edges(self):
        network, users, _ = _network_with(3, 1)
        with pytest.raises(ValidationError):
            network.add_friendships_bulk(
                [(users[0], users[1]), (users[2], users[2])]
            )
        assert network.graph.edge_count == 0
        assert all(network.graph.neighbors(u) == set() for u in users)


def _scalar_like_pages_bulk(self, user_id, page_ids, time):
    """The pre-batching write path: one `like_page` call per page."""
    added = 0
    for page_id in page_ids:
        if self.like_page(user_id, page_id, time):
            added += 1
    return added


def _scalar_add_friendships_bulk(self, pairs):
    before = self.graph.edge_count
    for a, b in pairs:
        self.add_friendship(a, b)
    return self.graph.edge_count - before


def _scalar_like_pages_fresh(self, user_id, page_ids, time):
    """The pre-columnar fresh path: one `like_page` call per page."""
    added = 0
    for page_id in np.asarray(page_ids, dtype=np.int64).tolist():
        if self.like_page(user_id, page_id, time):
            added += 1
    return added


def _scalar_like_pages_fresh_many(self, user_ids, page_lists, time):
    """The pre-cohort-batching path: one `like_pages_fresh` per user.

    Dispatches through ``self`` so the (also monkeypatched) per-user
    scalar fallback runs underneath — the study then writes every like
    through `like_page`, the fully scalar path.
    """
    total = 0
    for user_id, pages in zip(user_ids, page_lists):
        total += self.like_pages_fresh(user_id, pages, time)
    return total


def _scalar_add_friendships_arrays(self, a, b):
    before = self.graph.edge_count
    for x, y in zip(np.asarray(a).tolist(), np.asarray(b).tolist()):
        self.add_friendship(x, y)
    return self.graph.edge_count - before


def _study_fingerprint(config: StudyConfig) -> dict:
    artifacts = HoneypotStudy(config).run()
    network = artifacts.network
    return {
        "like_counts": {
            campaign_id: record.total_likes
            for campaign_id, record in artifacts.dataset.campaigns.items()
        },
        "liker_ids": {
            campaign_id: sorted(obs.user_id for obs in record.observations)
            for campaign_id, record in artifacts.dataset.campaigns.items()
        },
        "edge_count": network.graph.edge_count,
        "like_events": len(network.likes),
        "baseline_ids": sorted(record.user_id for record in artifacts.dataset.baseline),
    }


class TestSeededStudyEquivalence:
    """A seeded small study is identical via the scalar and bulk write paths."""

    def test_dataset_identical(self, monkeypatch):
        config = StudyConfig.small(seed=991)
        bulk = _study_fingerprint(config)
        # Swap out every batch/columnar write entry point the generators
        # use — cohort-wide like appends, per-user fresh likes, and array
        # edge wiring all collapse to per-item scalar calls.
        monkeypatch.setattr(SocialNetwork, "like_pages_bulk", _scalar_like_pages_bulk)
        monkeypatch.setattr(
            SocialNetwork, "add_friendships_bulk", _scalar_add_friendships_bulk
        )
        monkeypatch.setattr(
            SocialNetwork, "like_pages_fresh", _scalar_like_pages_fresh
        )
        monkeypatch.setattr(
            SocialNetwork, "like_pages_fresh_many", _scalar_like_pages_fresh_many
        )
        monkeypatch.setattr(
            SocialNetwork, "add_friendships_arrays", _scalar_add_friendships_arrays
        )
        scalar = _study_fingerprint(config)
        assert scalar == bulk
