"""Scalar-vs-bulk equivalence for the OSN write paths.

The bulk APIs (`like_pages_bulk`, `like_page_many`, `add_friendships_bulk`,
`LikeLog.record_many`) exist purely for speed; their contract is that final
network state is identical to looping the scalar calls in the same order.
These tests pin that contract at the unit level and end-to-end: a seeded
small study must produce the identical dataset whether the generators write
through the bulk fast path or through per-item scalar calls.
"""

from __future__ import annotations

import pytest

from repro.honeypot.study import HoneypotStudy, StudyConfig
from repro.osn.events import LikeEvent, LikeLog
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.util.validation import ValidationError


def _network_with(n_users: int, n_pages: int) -> tuple:
    network = SocialNetwork()
    users = [
        network.create_user(gender=Gender.FEMALE, age=30, country="US").user_id
        for _ in range(n_users)
    ]
    pages = [network.create_page(f"p{i}").page_id for i in range(n_pages)]
    return network, users, pages


def _like_state(network: SocialNetwork, users, pages) -> tuple:
    return (
        [network.page_liker_ids(p) for p in pages],
        [sorted(network.user_liked_page_ids(u)) for u in users],
        [network.likes.for_page(p) for p in pages],
        [network.likes.for_user(u) for u in users],
        len(network.likes),
    )


class TestLikePagesBulk:
    def test_matches_scalar_loop(self):
        scalar_net, users, pages = _network_with(3, 10)
        bulk_net, bulk_users, bulk_pages = _network_with(3, 10)
        batches = [pages[0:6], pages[3:9], pages[2:10:2]]
        for user_id, batch in zip(users, batches):
            for page_id in batch:
                scalar_net.like_page(user_id, page_id, time=4)
        for user_id, batch in zip(bulk_users, batches):
            bulk_net.like_pages_bulk(user_id, batch, time=4)
        assert _like_state(scalar_net, users, pages) == _like_state(
            bulk_net, bulk_users, bulk_pages
        )

    def test_skips_duplicates_and_already_liked(self):
        network, (alice, *_), pages = _network_with(1, 4)
        network.like_page(alice, pages[0], time=0)
        added = network.like_pages_bulk(
            alice, [pages[0], pages[1], pages[1], pages[2]], time=1
        )
        assert added == 2
        assert sorted(network.user_liked_page_ids(alice)) == sorted(pages[:3])
        # the pre-existing like kept its original timestamp
        assert network.likes.for_page(pages[0])[0].time == 0

    def test_rejects_unknown_page_and_bad_time(self):
        network, (alice, *_), pages = _network_with(1, 2)
        with pytest.raises(ValidationError):
            network.like_pages_bulk(alice, [pages[0], 424242], time=0)
        with pytest.raises(ValidationError):
            network.like_pages_bulk(alice, pages, time=-1)

    def test_failed_batch_applies_nothing(self):
        # A rejected batch must not leave the liker sets and the like log
        # disagreeing: either every valid page before the bad one is fully
        # recorded, or none is.  We guarantee the stronger form — nothing.
        network, (alice, *_), pages = _network_with(1, 3)
        with pytest.raises(ValidationError):
            network.like_pages_bulk(alice, [pages[0], 424242, pages[1]], time=0)
        assert network.user_liked_page_ids(alice) == set()
        assert all(network.page_liker_ids(p) == [] for p in pages)
        assert len(network.likes) == 0

    def test_rejects_terminated_user(self):
        network, (alice, *_), pages = _network_with(1, 2)
        network.terminate_account(alice, time=5)
        with pytest.raises(ValidationError):
            network.like_pages_bulk(alice, pages, time=6)

    def test_like_page_many_matches_scalar(self):
        scalar_net, users, pages = _network_with(2, 5)
        bulk_net, bulk_users, bulk_pages = _network_with(2, 5)
        events = [
            (0, 0, 1), (1, 0, 1), (0, 1, 2), (0, 0, 3),  # last is a repeat
        ]
        for u, p, t in events:
            scalar_net.like_page(users[u], pages[p], time=t)
        added = bulk_net.like_page_many(
            LikeEvent(user_id=bulk_users[u], page_id=bulk_pages[p], time=t)
            for u, p, t in events
        )
        assert added == 3
        assert _like_state(scalar_net, users, pages) == _like_state(
            bulk_net, bulk_users, bulk_pages
        )


class TestRecordMany:
    def test_matches_scalar_records(self):
        scalar_log, bulk_log = LikeLog(), LikeLog()
        for page_id in (10, 11, 12):
            scalar_log.record(LikeEvent(user_id=1, page_id=page_id, time=2))
        bulk_log.record_many(1, [10, 11, 12], 2)
        for page_id in (10, 11, 12):
            assert scalar_log.for_page(page_id) == bulk_log.for_page(page_id)
        assert scalar_log.for_user(1) == bulk_log.for_user(1)
        assert len(scalar_log) == len(bulk_log) == 3

    def test_rejects_out_of_order_and_negative_time(self):
        log = LikeLog()
        log.record_many(1, [10], 5)
        with pytest.raises(ValidationError):
            log.record_many(2, [10], 4)
        with pytest.raises(ValidationError):
            log.record_many(2, [11], -1)

    def test_failed_batch_leaves_log_untouched(self):
        log = LikeLog()
        log.record_many(1, [10], 5)
        with pytest.raises(ValidationError):
            # page 11 would be fine; page 10 violates chronology
            log.record_many(2, [11, 10], 4)
        assert log.for_page(11) == ()
        assert log.for_user(2) == ()
        assert len(log) == 1


class TestAddFriendshipsBulk:
    def test_matches_scalar_loop(self):
        scalar_net, users, _ = _network_with(6, 1)
        bulk_net, bulk_users, _ = _network_with(6, 1)
        pairs = [(0, 1), (1, 2), (0, 1), (3, 4), (2, 0)]
        for a, b in pairs:
            scalar_net.add_friendship(users[a], users[b])
        added = bulk_net.add_friendships_bulk(
            (bulk_users[a], bulk_users[b]) for a, b in pairs
        )
        assert added == 4  # one duplicate pair
        assert scalar_net.graph.edge_count == bulk_net.graph.edge_count
        # both networks allocate identical user ids, so edges compare directly
        for user_id in users:
            assert scalar_net.graph.neighbors(user_id) == bulk_net.graph.neighbors(
                user_id
            )

    def test_rejects_self_loops_and_unknown_users(self):
        network, users, _ = _network_with(2, 1)
        with pytest.raises(ValidationError):
            network.add_friendships_bulk([(users[0], users[0])])
        with pytest.raises(ValidationError):
            network.add_friendships_bulk([(users[0], 999999)])

    def test_failed_batch_adds_no_edges(self):
        network, users, _ = _network_with(3, 1)
        with pytest.raises(ValidationError):
            network.add_friendships_bulk(
                [(users[0], users[1]), (users[2], users[2])]
            )
        assert network.graph.edge_count == 0
        assert all(network.graph.neighbors(u) == set() for u in users)


def _scalar_like_pages_bulk(self, user_id, page_ids, time):
    """The pre-batching write path: one `like_page` call per page."""
    added = 0
    for page_id in page_ids:
        if self.like_page(user_id, page_id, time):
            added += 1
    return added


def _scalar_add_friendships_bulk(self, pairs):
    before = self.graph.edge_count
    for a, b in pairs:
        self.add_friendship(a, b)
    return self.graph.edge_count - before


def _study_fingerprint(config: StudyConfig) -> dict:
    artifacts = HoneypotStudy(config).run()
    network = artifacts.network
    return {
        "like_counts": {
            campaign_id: record.total_likes
            for campaign_id, record in artifacts.dataset.campaigns.items()
        },
        "liker_ids": {
            campaign_id: sorted(obs.user_id for obs in record.observations)
            for campaign_id, record in artifacts.dataset.campaigns.items()
        },
        "edge_count": network.graph.edge_count,
        "like_events": len(network.likes),
        "baseline_ids": sorted(record.user_id for record in artifacts.dataset.baseline),
    }


class TestSeededStudyEquivalence:
    """A seeded small study is identical via the scalar and bulk write paths."""

    def test_dataset_identical(self, monkeypatch):
        config = StudyConfig.small(seed=991)
        bulk = _study_fingerprint(config)
        monkeypatch.setattr(SocialNetwork, "like_pages_bulk", _scalar_like_pages_bulk)
        monkeypatch.setattr(
            SocialNetwork, "add_friendships_bulk", _scalar_add_friendships_bulk
        )
        scalar = _study_fingerprint(config)
        assert scalar == bulk
