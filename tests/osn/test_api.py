"""Tests for repro.osn.api."""

import pytest

from repro.osn.api import PlatformAPI, RequestBudgetExceeded
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.util.validation import ValidationError


@pytest.fixture()
def world():
    net = SocialNetwork()
    public = net.create_user(gender=Gender.FEMALE, age=22, country="US",
                             friend_list_public=True)
    private = net.create_user(gender=Gender.MALE, age=40, country="IN",
                              friend_list_public=False)
    net.add_friendship(public.user_id, private.user_id)
    public.background_friend_count = 10
    page = net.create_page("P", description="d")
    net.like_page(public.user_id, page.page_id, time=0)
    public.background_like_count = 5
    return net, public, private, page


class TestProfileEndpoints:
    def test_get_profile_public_fields(self, world):
        net, public, _, _ = world
        api = PlatformAPI(net)
        view = api.get_profile(public.user_id)
        assert view.gender == "F"
        assert view.age_bracket == "18-24"
        assert view.country == "US"
        assert view.friend_list_public

    def test_terminated_profile_gone(self, world):
        net, public, _, _ = world
        net.terminate_account(public.user_id, time=5)
        api = PlatformAPI(net)
        assert api.get_profile(public.user_id) is None

    def test_unknown_user_none(self, world):
        net, _, _, _ = world
        assert PlatformAPI(net).get_profile(424242) is None

    def test_friend_list_respects_privacy(self, world):
        net, public, private, _ = world
        api = PlatformAPI(net)
        assert api.get_friend_list(public.user_id) == [int(private.user_id)]
        assert api.get_friend_list(private.user_id) is None

    def test_declared_friend_count(self, world):
        net, public, private, _ = world
        api = PlatformAPI(net)
        assert api.get_declared_friend_count(public.user_id) == 11
        assert api.get_declared_friend_count(private.user_id) is None

    def test_declared_counts_unknown_user_none(self, world):
        # consistent with every sibling endpoint: unknown -> None, not raise
        net, _, _, _ = world
        api = PlatformAPI(net)
        assert api.get_declared_friend_count(424242) is None
        assert api.get_declared_like_count(424242) is None

    def test_declared_counts_are_charged(self, world):
        # the count lives on the friend-list/likes pages, so reading it
        # costs a request of that kind — even for unknown users
        net, public, _, _ = world
        api = PlatformAPI(net)
        api.get_declared_friend_count(public.user_id)
        api.get_declared_like_count(public.user_id)
        api.get_declared_friend_count(424242)
        assert api.stats.friend_list == 2
        assert api.stats.page_likes == 1
        assert api.stats.total == 3

    def test_declared_counts_respect_budget(self, world):
        net, public, _, _ = world
        api = PlatformAPI(net, max_requests=1)
        api.get_declared_like_count(public.user_id)
        with pytest.raises(RequestBudgetExceeded):
            api.get_declared_friend_count(public.user_id)

    def test_page_likes_and_count(self, world):
        net, public, _, page = world
        api = PlatformAPI(net)
        assert api.get_page_likes(public.user_id) == [int(page.page_id)]
        assert api.get_declared_like_count(public.user_id) == 6

    def test_terminated_likes_gone(self, world):
        net, public, _, _ = world
        net.terminate_account(public.user_id, time=5)
        api = PlatformAPI(net)
        assert api.get_page_likes(public.user_id) is None
        assert api.get_declared_like_count(public.user_id) is None


class TestPageEndpoint:
    def test_page_view(self, world):
        net, public, _, page = world
        view = PlatformAPI(net).get_page(page.page_id)
        assert view.like_count == 1
        assert view.liker_ids == (int(public.user_id),)
        assert view.description == "d"

    def test_page_reflects_removals(self, world):
        net, public, _, page = world
        net.remove_like(public.user_id, page.page_id, time=9)
        view = PlatformAPI(net).get_page(page.page_id)
        assert view.like_count == 0


class TestBudgetAndStats:
    def test_stats_count_by_kind(self, world):
        net, public, _, page = world
        api = PlatformAPI(net)
        api.get_profile(public.user_id)
        api.get_friend_list(public.user_id)
        api.get_page_likes(public.user_id)
        api.get_page(page.page_id)
        assert api.stats.profile == 1
        assert api.stats.friend_list == 1
        assert api.stats.page_likes == 1
        assert api.stats.page == 1
        assert api.stats.total == 4

    def test_budget_enforced(self, world):
        net, public, _, _ = world
        api = PlatformAPI(net, max_requests=2)
        api.get_profile(public.user_id)
        api.get_profile(public.user_id)
        with pytest.raises(RequestBudgetExceeded):
            api.get_profile(public.user_id)

    def test_invalid_budget(self, world):
        net, _, _, _ = world
        with pytest.raises(ValidationError):
            PlatformAPI(net, max_requests=0)

    def test_study_reports_crawl_volume(self, small_artifacts):
        stats = small_artifacts.api.stats
        # monitors polled pages for weeks; crawler touched every liker
        assert stats.page > 500
        assert stats.friend_list >= len(small_artifacts.dataset.likers)
        assert stats.total > 1000
