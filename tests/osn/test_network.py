"""Tests for repro.osn.network."""

import pytest

from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.util.validation import ValidationError


@pytest.fixture()
def net():
    return SocialNetwork()


def make_user(net, **kwargs):
    defaults = dict(gender=Gender.FEMALE, age=25, country="US")
    defaults.update(kwargs)
    return net.create_user(**defaults)


class TestUsers:
    def test_create_and_lookup(self, net):
        profile = make_user(net)
        assert net.user(profile.user_id) is profile
        assert net.has_user(profile.user_id)
        assert net.user_count == 1

    def test_unique_ids(self, net):
        ids = {make_user(net).user_id for _ in range(50)}
        assert len(ids) == 50

    def test_unknown_user_raises(self, net):
        with pytest.raises(KeyError):
            net.user(12345)

    def test_users_in_cohort(self, net):
        make_user(net, cohort="organic")
        make_user(net, cohort="clickworker")
        assert len(net.users_in_cohort("clickworker")) == 1


class TestPages:
    def test_create_and_lookup(self, net):
        page = net.create_page("P")
        assert net.page(page.page_id) is page
        assert net.page_count == 1

    def test_owner_must_exist(self, net):
        with pytest.raises(ValidationError):
            net.create_page("P", owner_id=999)

    def test_honeypot_listing(self, net):
        net.create_page("normal")
        net.create_page("trap", category="honeypot")
        assert [p.name for p in net.honeypot_pages()] == ["trap"]


class TestFriendships:
    def test_add(self, net):
        a, b = make_user(net), make_user(net)
        net.add_friendship(a.user_id, b.user_id)
        assert net.friend_count(a.user_id) == 1

    def test_unknown_user_rejected(self, net):
        a = make_user(net)
        with pytest.raises(ValidationError):
            net.add_friendship(a.user_id, 999)

    def test_terminated_cannot_befriend(self, net):
        a, b = make_user(net), make_user(net)
        net.terminate_account(a.user_id, time=10)
        with pytest.raises(ValidationError):
            net.add_friendship(a.user_id, b.user_id)

    def test_declared_friend_count(self, net):
        a, b = make_user(net), make_user(net)
        net.add_friendship(a.user_id, b.user_id)
        a.background_friend_count = 100
        assert net.declared_friend_count(a.user_id) == 101


class TestLikes:
    def test_like_records_event(self, net):
        user = make_user(net)
        page = net.create_page("P")
        assert net.like_page(user.user_id, page.page_id, time=5)
        assert net.page_like_count(page.page_id) == 1
        assert net.user_like_count(user.user_id) == 1
        assert net.likes.for_page(page.page_id)[0].time == 5

    def test_like_idempotent(self, net):
        user = make_user(net)
        page = net.create_page("P")
        assert net.like_page(user.user_id, page.page_id, time=5)
        assert not net.like_page(user.user_id, page.page_id, time=6)
        assert net.page_like_count(page.page_id) == 1

    def test_liker_order_preserved(self, net):
        users = [make_user(net) for _ in range(3)]
        page = net.create_page("P")
        for i, user in enumerate(users):
            net.like_page(user.user_id, page.page_id, time=i)
        assert net.page_liker_ids(page.page_id) == [u.user_id for u in users]

    def test_terminated_cannot_like(self, net):
        user = make_user(net)
        page = net.create_page("P")
        net.terminate_account(user.user_id, time=0)
        with pytest.raises(ValidationError):
            net.like_page(user.user_id, page.page_id, time=1)

    def test_declared_like_count(self, net):
        user = make_user(net)
        page = net.create_page("P")
        net.like_page(user.user_id, page.page_id, time=0)
        user.background_like_count = 500
        assert net.declared_like_count(user.user_id) == 501

    def test_unknown_page_rejected(self, net):
        user = make_user(net)
        with pytest.raises(ValidationError):
            net.like_page(user.user_id, 9999, time=0)


class TestTermination:
    def test_marks_profile_and_severs_edges(self, net):
        a, b = make_user(net), make_user(net)
        net.add_friendship(a.user_id, b.user_id)
        net.terminate_account(a.user_id, time=99)
        assert a.is_terminated
        assert a.terminated_at == 99
        assert net.friend_count(b.user_id) == 0

    def test_keeps_like_history(self, net):
        user = make_user(net)
        page = net.create_page("P")
        net.like_page(user.user_id, page.page_id, time=0)
        net.terminate_account(user.user_id, time=10)
        assert user.user_id in net.page_liker_ids(page.page_id)

    def test_double_termination_rejected(self, net):
        user = make_user(net)
        net.terminate_account(user.user_id, time=0)
        with pytest.raises(ValidationError):
            net.terminate_account(user.user_id, time=1)
