"""Tests for repro.osn.faults (deterministic fault injection)."""

import pytest

from repro.osn.api import PlatformAPI
from repro.osn.faults import (
    CrawlTimeout,
    FaultProfile,
    FaultyPlatformAPI,
    RateLimited,
    TransientError,
    TruncatedResponse,
)
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


@pytest.fixture()
def world():
    net = SocialNetwork()
    user = net.create_user(gender=Gender.FEMALE, age=22, country="US",
                           friend_list_public=True)
    friends = [net.create_user(gender=Gender.MALE, age=30, country="US")
               for _ in range(4)]
    for friend in friends:
        net.add_friendship(user.user_id, friend.user_id)
    page = net.create_page("P", description="d")
    for liker in [user] + friends:
        net.like_page(liker.user_id, page.page_id, time=0)
    return net, user, page


def wrap(net, profile, seed=7):
    return FaultyPlatformAPI(PlatformAPI(net), profile, RngStream(seed, "faults"))


class TestFaultProfile:
    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            FaultProfile(transient_error_rate=-0.1)
        with pytest.raises(ValidationError):
            FaultProfile(transient_error_rate=0.6, rate_limit_rate=0.6)
        with pytest.raises(ValidationError):
            FaultProfile(retry_after_range=(0, 5))
        with pytest.raises(ValidationError):
            FaultProfile(truncation_keep_fraction=1.0)

    def test_null_detection(self):
        assert FaultProfile.none().is_null
        assert not FaultProfile.default().is_null
        assert not FaultProfile(profile_permafail_rate=0.5).is_null


class TestNullProfilePassThrough:
    def test_results_identical_and_no_rng_consumed(self, world):
        net, user, page = world
        rng = RngStream(7, "faults")
        api = FaultyPlatformAPI(PlatformAPI(net), FaultProfile.none(), rng)
        plain = PlatformAPI(net)
        for _ in range(20):
            assert api.get_profile(user.user_id) == plain.get_profile(user.user_id)
            assert api.get_friend_list(user.user_id) == plain.get_friend_list(user.user_id)
            assert api.get_page(page.page_id) == plain.get_page(page.page_id)
        # the stream was never touched: its next draw equals a fresh stream's
        assert rng.random() == RngStream(7, "faults").random()
        assert api.stats.faults_injected == 0


class TestInjection:
    def test_certain_transient_error(self, world):
        net, user, _ = world
        api = wrap(net, FaultProfile(transient_error_rate=1.0))
        with pytest.raises(TransientError):
            api.get_profile(user.user_id)
        assert api.stats.transient_errors == 1

    def test_certain_rate_limit_carries_hint(self, world):
        net, user, _ = world
        api = wrap(net, FaultProfile(rate_limit_rate=1.0, retry_after_range=(3, 9)))
        with pytest.raises(RateLimited) as info:
            api.get_friend_list(user.user_id)
        assert 3 <= info.value.retry_after <= 9
        assert api.stats.rate_limited == 1

    def test_certain_timeout(self, world):
        net, user, _ = world
        api = wrap(net, FaultProfile(timeout_rate=1.0))
        with pytest.raises(CrawlTimeout):
            api.get_page_likes(user.user_id)
        assert api.stats.timeouts == 1

    def test_truncation_on_page_keeps_count_cuts_likers(self, world):
        net, _, page = world
        api = wrap(net, FaultProfile(truncation_rate=1.0,
                                     truncation_keep_fraction=0.5))
        with pytest.raises(TruncatedResponse) as info:
            api.get_page(page.page_id)
        partial = info.value.partial
        assert partial.like_count == 5  # the counter survives pagination
        assert len(partial.liker_ids) == 2  # floor(5 * 0.5)
        full = PlatformAPI(net).get_page(page.page_id)
        assert partial.liker_ids == full.liker_ids[:2]  # a prefix, not a shuffle
        assert api.stats.truncated == 1

    def test_truncation_on_friend_list_is_prefix(self, world):
        net, user, _ = world
        api = wrap(net, FaultProfile(truncation_rate=1.0,
                                     truncation_keep_fraction=0.5))
        full = PlatformAPI(net).get_friend_list(user.user_id)
        with pytest.raises(TruncatedResponse) as info:
            api.get_friend_list(user.user_id)
        assert info.value.partial == full[:2]

    def test_truncation_band_is_success_on_scalar_endpoints(self, world):
        net, user, _ = world
        api = wrap(net, FaultProfile(truncation_rate=1.0))
        # scalar endpoint: the truncation band resolves to a clean response
        assert api.get_declared_friend_count(user.user_id) == 4

    def test_faulted_requests_still_charged(self, world):
        net, user, _ = world
        api = wrap(net, FaultProfile(transient_error_rate=1.0))
        for _ in range(3):
            with pytest.raises(TransientError):
                api.get_profile(user.user_id)
        assert api.stats.profile == 3

    def test_same_seed_same_fault_sequence(self, world):
        net, user, page = world

        def fault_kinds(seed):
            api = wrap(net, FaultProfile.default(), seed=seed)
            kinds = []
            for _ in range(200):
                try:
                    api.get_page(page.page_id)
                    kinds.append("ok")
                except Exception as fault:  # noqa: BLE001 - recording kind
                    kinds.append(type(fault).__name__)
            return kinds

        assert fault_kinds(11) == fault_kinds(11)
        assert fault_kinds(11) != fault_kinds(12)


class TestPermanentFailures:
    def test_permafailed_user_fails_every_time_on_every_user_endpoint(self, world):
        net, user, page = world
        api = wrap(net, FaultProfile(profile_permafail_rate=1.0))
        for _ in range(5):
            with pytest.raises(TransientError):
                api.get_profile(user.user_id)
            with pytest.raises(TransientError):
                api.get_friend_list(user.user_id)
            with pytest.raises(TransientError):
                api.get_declared_like_count(user.user_id)
        # pages are the study's own property: polling never permafails
        assert api.get_page(page.page_id).like_count == 5

    def test_permafail_subset_is_stable(self, world):
        net, _, _ = world
        users = [net.create_user(gender=Gender.MALE, age=25, country="US")
                 for _ in range(100)]
        profile = FaultProfile(profile_permafail_rate=0.3)
        api = wrap(net, profile, seed=3)

        def broken():
            out = set()
            for u in users:
                try:
                    api.get_profile(u.user_id)
                except TransientError:
                    out.add(int(u.user_id))
            return out

        first = broken()
        assert first == broken()  # retrying cannot revive a dead profile
        assert 10 < len(first) < 50  # roughly the configured rate
