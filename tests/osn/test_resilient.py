"""Tests for repro.osn.resilient (retry/backoff, circuit breaker)."""

import pytest

from repro.osn.api import PlatformAPI, PublicPage, RequestStats
from repro.osn.faults import (
    CrawlTimeout,
    EndpointUnavailable,
    RateLimited,
    TransientError,
    TruncatedResponse,
)
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.osn.resilient import CircuitBreaker, ResilientAPI, RetryPolicy
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


class ScriptedAPI:
    """A fake inner API that replays a per-endpoint script of outcomes.

    Script entries are either an exception instance (raised) or a plain
    value (returned).  Once a script runs dry the endpoint keeps returning
    its last value.
    """

    def __init__(self, script):
        self.stats = RequestStats()
        self._script = list(script)
        self.calls = 0

    def _next(self):
        self.calls += 1
        outcome = self._script.pop(0) if self._script else "ok"
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def get_profile(self, user_id):
        return self._next()

    def get_friend_list(self, user_id):
        return self._next()

    def get_declared_friend_count(self, user_id):
        return self._next()

    def get_page_likes(self, user_id):
        return self._next()

    def get_declared_like_count(self, user_id):
        return self._next()

    def get_page(self, page_id):
        return self._next()


def resilient(script, **policy_kwargs):
    inner = ScriptedAPI(script)
    policy = RetryPolicy(**policy_kwargs) if policy_kwargs else RetryPolicy()
    return ResilientAPI(inner, policy, RngStream(5, "backoff")), inner


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            RetryPolicy(base_backoff=10.0, max_backoff=5.0)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_backoff=2.0, backoff_factor=2.0, max_backoff=6.0)
        assert policy.backoff_for(1) == 2.0
        assert policy.backoff_for(2) == 4.0
        assert policy.backoff_for(3) == 6.0  # capped
        assert policy.backoff_for(10) == 6.0


class TestRetries:
    def test_success_after_transient_failures(self):
        api, inner = resilient([TransientError(), CrawlTimeout(), "value"])
        assert api.get_profile(1) == "value"
        assert inner.calls == 3
        assert api.stats.retries == 2
        assert api.stats.backoff_minutes > 0
        assert api.stats.failures == 0

    def test_rate_limit_waits_out_the_hint(self):
        api, _ = resilient([RateLimited(retry_after=42), "value"])
        assert api.get_profile(1) == "value"
        assert api.stats.backoff_minutes == 42.0

    def test_budget_exhaustion_raises(self):
        api, inner = resilient([TransientError()] * 10, max_attempts=3)
        with pytest.raises(EndpointUnavailable):
            api.get_profile(1)
        assert inner.calls == 3  # the hard budget
        assert api.stats.failures == 1

    def test_deterministic_jitter(self):
        def run(seed):
            inner = ScriptedAPI([TransientError(), TransientError(), "v"])
            api = ResilientAPI(inner, RetryPolicy(), RngStream(seed, "backoff"))
            api.get_profile(1)
            return api.stats.backoff_minutes

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_no_rng_consumed_without_retries(self):
        rng = RngStream(5, "backoff")
        api = ResilientAPI(ScriptedAPI(["v"]), RetryPolicy(), rng)
        assert api.get_profile(1) == "v"
        assert rng.random() == RngStream(5, "backoff").random()


class TestTruncationRecovery:
    def test_retry_recovers_full_response(self):
        api, _ = resilient([TruncatedResponse([1, 2]), [1, 2, 3, 4]])
        assert api.get_friend_list(1) == [1, 2, 3, 4]
        assert api.stats.failures == 0

    def test_longest_partial_returned_on_exhaustion(self):
        api, _ = resilient(
            [TruncatedResponse([1]), TruncatedResponse([1, 2, 3]),
             TruncatedResponse([1, 2])],
            max_attempts=3,
        )
        assert api.get_friend_list(1) == [1, 2, 3]
        assert api.stats.failures == 1  # degraded, and counted as such

    def test_partial_page_usable(self):
        page = PublicPage(page_id=1, name="P", description="d",
                          like_count=4, liker_ids=(10, 11))
        api, _ = resilient([TruncatedResponse(page)] * 3, max_attempts=3)
        result = api.get_page(1)
        assert result.like_count == 4
        assert result.liker_ids == (10, 11)


class TestCircuitBreaker:
    def test_unit_state_machine(self):
        breaker = CircuitBreaker(threshold=2, cooldown=3)
        assert breaker.allow()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # trips
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # third swallowed call opens the probe window
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.record_failure()  # failed probe: straight back open
        assert breaker.state == CircuitBreaker.OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.allow()  # cooldown of 1: immediate half-open probe
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_trip_and_fast_fail_without_touching_platform(self):
        api, inner = resilient(
            [TransientError()] * 100,
            max_attempts=2, breaker_threshold=2, breaker_cooldown=4, jitter=0.0,
        )
        with pytest.raises(EndpointUnavailable):
            api.get_profile(1)  # two failures: trips the breaker
        assert api.stats.breaker_trips == 1
        calls_before = inner.calls
        with pytest.raises(EndpointUnavailable):
            api.get_profile(1)  # fast-fail: the platform is not called
        assert inner.calls == calls_before
        assert api.stats.breaker_fastfails >= 1

    def test_breakers_are_per_endpoint(self):
        api, inner = resilient(
            [TransientError()] * 4 + ["page-ok"],
            max_attempts=2, breaker_threshold=2,
        )
        with pytest.raises(EndpointUnavailable):
            api.get_profile(1)
        with pytest.raises(EndpointUnavailable):
            api.get_friend_list(1)  # own breaker: still reaches the platform
        assert api.breaker("get_profile").state == CircuitBreaker.OPEN
        assert api.breaker("get_friend_list").state == CircuitBreaker.OPEN
        assert api.get_page(1) == "page-ok"  # untouched endpoint unaffected

    def test_rate_limits_do_not_trip_the_breaker(self):
        api, _ = resilient(
            [RateLimited(2), RateLimited(2), RateLimited(2), "v"],
            max_attempts=4, breaker_threshold=2,
        )
        assert api.get_profile(1) == "v"
        assert api.stats.breaker_trips == 0


class TestPassThroughOverRealAPI:
    def test_fault_free_wrap_is_transparent(self):
        net = SocialNetwork()
        user = net.create_user(gender=Gender.FEMALE, age=22, country="US",
                               friend_list_public=True)
        page = net.create_page("P")
        net.like_page(user.user_id, page.page_id, time=0)
        inner = PlatformAPI(net)
        api = ResilientAPI(inner, RetryPolicy(), RngStream(1, "backoff"))
        assert api.get_profile(user.user_id) == inner.get_profile(user.user_id)
        assert api.get_page(page.page_id).like_count == 1
        assert api.stats is inner.stats
        assert api.stats.retries == 0
        assert api.stats.failures == 0


class TestBreakerStateDict:
    def test_open_breaker_stays_open_mid_cooldown(self):
        breaker = CircuitBreaker(threshold=2, cooldown=4)
        breaker.record_failure()
        breaker.record_failure()  # trips: open
        assert not breaker.allow()  # 1 of 4 swallowed
        resumed = CircuitBreaker(threshold=2, cooldown=4)
        resumed.load_state_dict(breaker.state_dict())
        assert resumed.state == CircuitBreaker.OPEN
        # cooldown continues from where the crashed run stood, not from 0
        assert not resumed.allow()
        assert not resumed.allow()
        assert resumed.allow()  # 4th swallow flips to half-open
        assert resumed.state == CircuitBreaker.HALF_OPEN

    def test_half_open_breaker_keeps_its_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.allow()  # open -> half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        resumed = CircuitBreaker(threshold=1, cooldown=1)
        resumed.load_state_dict(breaker.state_dict())
        assert resumed.state == CircuitBreaker.HALF_OPEN
        assert resumed.record_failure()  # failed probe goes straight back open
        assert resumed.state == CircuitBreaker.OPEN

    def test_closed_breaker_does_not_reopen_early(self):
        breaker = CircuitBreaker(threshold=3, cooldown=2)
        breaker.record_failure()
        breaker.record_failure()  # streak of 2, still closed
        resumed = CircuitBreaker(threshold=3, cooldown=2)
        resumed.load_state_dict(breaker.state_dict())
        assert resumed.state == CircuitBreaker.CLOSED
        # the restored streak must be respected: one more failure trips it,
        # but a success wipes it exactly as in the uninterrupted run
        resumed.record_success()
        assert not resumed.record_failure()
        assert resumed.state == CircuitBreaker.CLOSED

    def test_unknown_state_refuses(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        with pytest.raises(ValidationError):
            breaker.load_state_dict(
                {"state": "melted", "consecutive_failures": 0, "swallowed": 0}
            )


class TestResilientAPIStateDict:
    def _api(self):
        network = SocialNetwork()
        inner = PlatformAPI(network, stats=RequestStats())
        return ResilientAPI(
            inner, RetryPolicy(breaker_threshold=2, breaker_cooldown=3),
            RngStream(5, "backoff"),
        )

    def test_round_trip_restores_every_breaker_and_the_jitter_stream(self):
        api = self._api()
        api.breaker("get_profile").record_failure()
        api.breaker("get_profile").record_failure()  # open
        api.breaker("get_page").record_failure()  # closed, streak 1
        state = api.state_dict()
        resumed = self._api()
        resumed.load_state_dict(state)
        assert resumed.breaker("get_profile").state == CircuitBreaker.OPEN
        assert resumed.breaker("get_page").state_dict() == (
            api.breaker("get_page").state_dict()
        )
        assert resumed.state_dict() == state

    def test_state_is_json_pure(self):
        import json

        api = self._api()
        api.breaker("get_profile").record_failure()
        state = api.state_dict()
        assert json.loads(json.dumps(state)) == state
