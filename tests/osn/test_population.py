"""Tests for repro.osn.population."""

import numpy as np
import pytest

from repro.osn.network import SocialNetwork
from repro.osn.population import (
    DemographicProfile,
    PopulationConfig,
    WorldBuilder,
    sample_age,
)
from repro.osn.profile import AGE_BRACKETS, Gender
from repro.util.distributions import Categorical
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def built():
    net = SocialNetwork()
    config = PopulationConfig(n_users=600, n_normal_pages=300, n_spam_pages=80)
    world = WorldBuilder(config).build(net, RngStream(42, "world"))
    return net, world, config


class TestSampleAge:
    def test_within_bracket(self, rng):
        dist = Categorical({"25-34": 1.0})
        for _ in range(50):
            assert 25 <= sample_age(rng, dist) <= 34

    def test_unknown_bracket_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_age(rng, Categorical({"99-100": 1.0}))


class TestDemographicProfile:
    def test_global_age_pmf_covers_brackets(self):
        pmf = DemographicProfile.global_facebook().global_age_pmf()
        assert set(pmf) == set(AGE_BRACKETS)
        assert sum(pmf.values()) == pytest.approx(1.0)


class TestPopulationConfig:
    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            PopulationConfig(n_users=0)

    def test_invalid_rates(self):
        with pytest.raises(ValidationError):
            PopulationConfig(friend_list_public_rate=1.5)

    def test_small_preset(self):
        assert PopulationConfig.small().n_users <= 1000


class TestWorldBuilder:
    def test_counts(self, built):
        net, world, config = built
        assert len(world.organic_user_ids) == config.n_users
        assert len(world.normal_page_ids) == config.n_normal_pages
        assert len(world.spam_page_ids) == config.n_spam_pages

    def test_all_users_organic(self, built):
        net, world, _ = built
        assert all(net.user(u).cohort == "organic" for u in world.organic_user_ids)

    def test_median_like_count_near_baseline(self, built):
        net, world, _ = built
        counts = [net.user_like_count(u) for u in world.organic_user_ids]
        # paper baseline median is ~34; allow sampling noise
        assert 20 <= float(np.median(counts)) <= 50

    def test_friendships_exist_and_symmetric(self, built):
        net, world, _ = built
        assert net.graph.edge_count > 0
        some = world.organic_user_ids[0]
        for friend in net.graph.neighbors(some):
            assert net.graph.are_friends(friend, some)

    def test_gender_split_roughly_global(self, built):
        net, world, _ = built
        males = sum(
            1 for u in world.organic_user_ids if net.user(u).gender == Gender.MALE
        )
        share = males / len(world.organic_user_ids)
        assert 0.44 <= share <= 0.64  # target 0.54

    def test_spam_likes_rare(self, built):
        net, world, _ = built
        spam = set(world.spam_page_ids)
        with_spam = sum(
            1
            for u in world.organic_user_ids
            if net.user_liked_page_ids(u) & spam
        )
        assert with_spam / len(world.organic_user_ids) < 0.1

    def test_deterministic(self):
        def build(seed):
            net = SocialNetwork()
            world = WorldBuilder(PopulationConfig.small()).build(
                net, RngStream(seed, "w")
            )
            return (
                net.graph.edge_count,
                len(net.likes),
                [net.user(u).country for u in world.organic_user_ids[:20]],
            )

        assert build(7) == build(7)
        assert build(7) != build(8)

    def test_universe_attached(self, built):
        _, world, config = built
        total_pages = len(world.universe.all_page_ids)
        assert total_pages == config.n_normal_pages + config.n_spam_pages
