"""Tests for repro.honeypot.monitor and repro.honeypot.page."""

import pytest

from repro.honeypot.monitor import MonitorPolicy, PageMonitor
from repro.honeypot.page import HONEYPOT_DESCRIPTION, create_honeypot_page
from repro.osn.api import PlatformAPI
from repro.osn.faults import TransientError
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.sim.engine import EventEngine
from repro.util.timeutil import DAY, HOUR
from repro.util.validation import ValidationError


@pytest.fixture()
def setup():
    net = SocialNetwork()
    page = net.create_page("P", category="honeypot")
    engine = EventEngine()
    return net, page, engine


def add_like(net, engine, page_id, time):
    user = net.create_user(gender=Gender.MALE, age=20, country="US")

    def do_like(t):
        net.like_page(user.user_id, page_id, t)

    engine.schedule(time, do_like)
    return user.user_id


class TestHoneypotPage:
    def test_page_flags(self):
        net = SocialNetwork()
        page = create_honeypot_page(net, "FB-TEST")
        assert page.is_honeypot
        assert page.description == HONEYPOT_DESCRIPTION
        assert "Virtual Electricity" in page.name

    def test_each_page_fresh_owner(self):
        net = SocialNetwork()
        owners = {create_honeypot_page(net, f"C{i}").owner_id for i in range(5)}
        assert len(owners) == 5


class TestMonitorPolicy:
    def test_defaults_match_paper(self):
        policy = MonitorPolicy()
        assert policy.active_interval == 2 * HOUR
        assert policy.idle_interval == DAY
        assert policy.quiet_stop == 7 * DAY

    def test_validation(self):
        with pytest.raises(ValidationError):
            MonitorPolicy(active_interval=0)


class TestPageMonitor:
    def test_two_hour_cadence_during_campaign(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, 5 * DAY)  # keep it alive
        monitor = PageMonitor(net, page.page_id, campaign_end=2 * DAY)
        monitor.attach(engine)
        engine.run_until(DAY)
        times = [s.time for s in monitor.snapshots]
        assert times[:4] == [0, 2 * HOUR, 4 * HOUR, 6 * HOUR]

    def test_daily_cadence_after_campaign(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, 3 * DAY)
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(4 * DAY)
        post = [s.time for s in monitor.snapshots if s.time > DAY]
        gaps = {b - a for a, b in zip(post, post[1:])}
        assert gaps == {DAY}

    def test_stops_after_quiet_week(self, setup):
        net, page, engine = setup
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(30 * DAY)
        assert monitor.stopped
        assert monitor.snapshots[-1].time <= 9 * DAY

    def test_new_likes_reset_quiet_clock(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, 6 * DAY)
        add_like(net, engine, page.page_id, 12 * DAY)
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(40 * DAY)
        assert monitor.snapshots[-1].time >= 12 * DAY

    def test_observed_likers_in_order(self, setup):
        net, page, engine = setup
        first = add_like(net, engine, page.page_id, 1 * HOUR)
        second = add_like(net, engine, page.page_id, 5 * HOUR)
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(20 * DAY)
        assert monitor.observed_liker_ids() == [first, second]

    def test_snapshot_cumulative_counts(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, 1 * HOUR)
        add_like(net, engine, page.page_id, 90)  # same 2h window
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(DAY)
        snapshot = monitor.snapshots[1]  # at 2h
        assert snapshot.cumulative_likes == 2
        assert len(snapshot.new_liker_ids) == 2

    def test_monitored_days(self, setup):
        net, page, engine = setup
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(30 * DAY)
        assert 7 <= monitor.monitored_days <= 9

    def test_double_attach_rejected(self, setup):
        net, page, engine = setup
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        with pytest.raises(ValidationError):
            monitor.attach(engine)


class TestStopRuleBoundaries:
    """The quiet-stop rule at its exact edges."""

    def test_poll_exactly_at_quiet_threshold_continues(self, setup):
        # quiet_stop is strict (>): a poll landing exactly quiet_stop after
        # the last new like keeps monitoring; only the next one stops.
        net, page, engine = setup
        add_like(net, engine, page.page_id, 0)
        policy = MonitorPolicy(active_interval=10, idle_interval=10, quiet_stop=30)
        monitor = PageMonitor(net, page.page_id, campaign_end=0, policy=policy)
        monitor.attach(engine)
        engine.run_until(10_000)
        assert monitor.stopped
        assert [s.time for s in monitor.snapshots] == [0, 10, 20, 30, 40]

    def test_like_landing_on_campaign_end_is_observed(self, setup):
        # The first idle-phase poll fires at campaign_end itself, so a like
        # arriving on the boundary minute is still picked up and resets the
        # quiet clock from there.
        net, page, engine = setup
        liker = add_like(net, engine, page.page_id, 20)
        policy = MonitorPolicy(active_interval=10, idle_interval=10, quiet_stop=30)
        monitor = PageMonitor(net, page.page_id, campaign_end=20, policy=policy)
        monitor.attach(engine)
        engine.run_until(10_000)
        boundary = [s for s in monitor.snapshots if s.time == 20]
        assert boundary and boundary[0].new_liker_ids == (liker,)
        assert monitor.snapshots[-1].time == 20 + 30 + 10
        assert monitor.observed_liker_ids() == [liker]

    def test_zero_likes_ever_stops_after_quiet_window(self, setup):
        net, page, engine = setup
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(30 * DAY)
        assert monitor.stopped
        assert monitor.observed_liker_ids() == []
        assert all(s.cumulative_likes == 0 for s in monitor.snapshots)
        # campaign day + quiet week, give or take the daily cadence
        assert 7 <= monitor.monitored_days <= 9


class FlakyAPI:
    """Delegates to a real PlatformAPI but fails chosen get_page calls."""

    def __init__(self, network, fail_calls):
        self._inner = PlatformAPI(network)
        self._fail_calls = set(fail_calls)
        self._count = 0

    def get_page(self, page_id):
        self._count += 1
        if self._count in self._fail_calls:
            raise TransientError("poll lost")
        return self._inner.get_page(page_id)


class TestPollFaultTolerance:
    def test_failed_poll_records_gap_and_next_poll_recovers(self, setup):
        net, page, engine = setup
        liker = add_like(net, engine, page.page_id, HOUR)
        api = FlakyAPI(net, fail_calls={2})  # the 2h poll is lost
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY, api=api)
        monitor.attach(engine)
        engine.run_until(DAY)
        assert monitor.poll_gaps == [2 * HOUR]
        assert monitor.missed_polls == 1
        times = [s.time for s in monitor.snapshots]
        assert 2 * HOUR not in times  # a gap, not a fake empty snapshot
        assert 4 * HOUR in times  # cadence unbroken
        # the like that landed in the gap is first observed one poll later
        by_time = {s.time: s for s in monitor.snapshots}
        assert by_time[4 * HOUR].new_liker_ids == (liker,)
        assert monitor.observed_liker_ids() == [liker]

    def test_every_poll_failing_yields_empty_but_finished_monitor(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, HOUR)
        api = FlakyAPI(net, fail_calls=set(range(1, 10_000)))
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY, api=api)
        monitor.attach(engine)
        engine.run_until(30 * DAY)
        assert monitor.stopped
        assert monitor.snapshots == []
        assert monitor.missed_polls > 10
        assert monitor.monitored_days == 0.0
