"""Tests for repro.honeypot.monitor and repro.honeypot.page."""

import pytest

from repro.honeypot.monitor import MonitorPolicy, PageMonitor
from repro.honeypot.page import HONEYPOT_DESCRIPTION, create_honeypot_page
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.sim.engine import EventEngine
from repro.util.timeutil import DAY, HOUR
from repro.util.validation import ValidationError


@pytest.fixture()
def setup():
    net = SocialNetwork()
    page = net.create_page("P", category="honeypot")
    engine = EventEngine()
    return net, page, engine


def add_like(net, engine, page_id, time):
    user = net.create_user(gender=Gender.MALE, age=20, country="US")

    def do_like(t):
        net.like_page(user.user_id, page_id, t)

    engine.schedule(time, do_like)
    return user.user_id


class TestHoneypotPage:
    def test_page_flags(self):
        net = SocialNetwork()
        page = create_honeypot_page(net, "FB-TEST")
        assert page.is_honeypot
        assert page.description == HONEYPOT_DESCRIPTION
        assert "Virtual Electricity" in page.name

    def test_each_page_fresh_owner(self):
        net = SocialNetwork()
        owners = {create_honeypot_page(net, f"C{i}").owner_id for i in range(5)}
        assert len(owners) == 5


class TestMonitorPolicy:
    def test_defaults_match_paper(self):
        policy = MonitorPolicy()
        assert policy.active_interval == 2 * HOUR
        assert policy.idle_interval == DAY
        assert policy.quiet_stop == 7 * DAY

    def test_validation(self):
        with pytest.raises(ValidationError):
            MonitorPolicy(active_interval=0)


class TestPageMonitor:
    def test_two_hour_cadence_during_campaign(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, 5 * DAY)  # keep it alive
        monitor = PageMonitor(net, page.page_id, campaign_end=2 * DAY)
        monitor.attach(engine)
        engine.run_until(DAY)
        times = [s.time for s in monitor.snapshots]
        assert times[:4] == [0, 2 * HOUR, 4 * HOUR, 6 * HOUR]

    def test_daily_cadence_after_campaign(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, 3 * DAY)
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(4 * DAY)
        post = [s.time for s in monitor.snapshots if s.time > DAY]
        gaps = {b - a for a, b in zip(post, post[1:])}
        assert gaps == {DAY}

    def test_stops_after_quiet_week(self, setup):
        net, page, engine = setup
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(30 * DAY)
        assert monitor.stopped
        assert monitor.snapshots[-1].time <= 9 * DAY

    def test_new_likes_reset_quiet_clock(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, 6 * DAY)
        add_like(net, engine, page.page_id, 12 * DAY)
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(40 * DAY)
        assert monitor.snapshots[-1].time >= 12 * DAY

    def test_observed_likers_in_order(self, setup):
        net, page, engine = setup
        first = add_like(net, engine, page.page_id, 1 * HOUR)
        second = add_like(net, engine, page.page_id, 5 * HOUR)
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(20 * DAY)
        assert monitor.observed_liker_ids() == [first, second]

    def test_snapshot_cumulative_counts(self, setup):
        net, page, engine = setup
        add_like(net, engine, page.page_id, 1 * HOUR)
        add_like(net, engine, page.page_id, 90)  # same 2h window
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(DAY)
        snapshot = monitor.snapshots[1]  # at 2h
        assert snapshot.cumulative_likes == 2
        assert len(snapshot.new_liker_ids) == 2

    def test_monitored_days(self, setup):
        net, page, engine = setup
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        engine.run_until(30 * DAY)
        assert 7 <= monitor.monitored_days <= 9

    def test_double_attach_rejected(self, setup):
        net, page, engine = setup
        monitor = PageMonitor(net, page.page_id, campaign_end=DAY)
        monitor.attach(engine)
        with pytest.raises(ValidationError):
            monitor.attach(engine)
