"""Tests for repro.honeypot.study (on the shared small run)."""

import pytest

from repro.honeypot.study import StudyConfig, default_termination_policy
from repro.util.validation import ValidationError


class TestStudyConfig:
    def test_small_preset_scaled(self):
        config = StudyConfig.small()
        assert config.scale == pytest.approx(0.1)
        assert config.population.n_users <= 1000

    def test_duplicate_campaign_ids_rejected(self):
        from repro.honeypot.campaignspec import paper_campaigns
        specs = paper_campaigns()
        with pytest.raises(ValidationError):
            StudyConfig(specs=specs + [specs[0]])

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            StudyConfig(scale=0)

    def test_termination_policy_scales_threshold(self):
        full = default_termination_policy(1.0)
        small = default_termination_policy(0.1)
        assert full.burst_threshold == 50
        assert small.burst_threshold == 5


class TestStudyRun:
    def test_thirteen_campaign_records(self, small_dataset):
        assert len(small_dataset.campaigns) == 13

    def test_inactive_orders_empty(self, small_dataset):
        for campaign_id in ("BL-ALL", "MS-ALL"):
            record = small_dataset.campaign(campaign_id)
            assert record.inactive
            assert record.total_likes == 0

    def test_active_campaigns_have_likes(self, small_dataset):
        for record in small_dataset.campaigns.values():
            if not record.inactive:
                assert record.total_likes > 0

    def test_every_observed_liker_crawled(self, small_dataset):
        for record in small_dataset.campaigns.values():
            for user_id in record.liker_ids:
                assert user_id in small_dataset.likers

    def test_liker_campaign_backrefs(self, small_dataset):
        for record in small_dataset.campaigns.values():
            for user_id in record.liker_ids:
                assert record.campaign_id in small_dataset.likers[user_id].campaign_ids

    def test_observations_sorted_by_time(self, small_dataset):
        for record in small_dataset.campaigns.values():
            times = [obs.observed_at for obs in record.observations]
            assert times == sorted(times)

    def test_baseline_sampled(self, small_dataset):
        assert len(small_dataset.baseline) == 400

    def test_baseline_excludes_fake_accounts(self, small_dataset, small_artifacts):
        net = small_artifacts.network
        for record in small_dataset.baseline:
            assert net.user(record.user_id).cohort == "organic"

    def test_global_stats_recorded(self, small_dataset):
        assert sum(small_dataset.global_gender.values()) == pytest.approx(1.0)
        assert sum(small_dataset.global_age.values()) == pytest.approx(1.0)

    def test_terminations_recorded_consistently(self, small_dataset):
        for record in small_dataset.campaigns.values():
            for user_id in record.terminated_liker_ids:
                assert small_dataset.likers[user_id].terminated

    def test_terminated_flags_match_network(self, small_dataset, small_artifacts):
        net = small_artifacts.network
        for liker in small_dataset.likers.values():
            assert liker.terminated == net.user(liker.user_id).is_terminated

    def test_monitoring_windows_plausible(self, small_dataset):
        # FB campaigns ran 15 days; monitoring should be ~15+7 for active pages
        fb = small_dataset.campaign("FB-EGY")
        assert 15 <= fb.monitored_days <= 24
        sf = small_dataset.campaign("SF-ALL")
        assert 7 <= sf.monitored_days <= 12

    def test_artifacts_expose_orders_and_campaigns(self, small_artifacts):
        assert len(small_artifacts.orders) == 8
        assert len(small_artifacts.campaigns) == 5
        assert len(small_artifacts.page_ids) == 13

    def test_dataset_likers_have_page_ids(self, small_dataset, small_artifacts):
        for campaign_id, page_id in small_artifacts.page_ids.items():
            assert small_dataset.campaign(campaign_id).page_id == int(page_id)
