"""Configurability: the study runner beyond the paper's 13 campaigns."""

import pytest

from repro.core.experiment import HoneypotExperiment
from repro.farms.base import REGION_USA, REGION_WORLDWIDE
from repro.farms.catalog import BOOSTLIKES, SOCIALFORMULA
from repro.honeypot.campaignspec import (
    FACEBOOK_PROVIDER,
    KIND_FACEBOOK_ADS,
    KIND_LIKE_FARM,
    CampaignSpec,
)
from repro.honeypot.study import HoneypotStudy, StudyConfig
from repro.osn.population import PopulationConfig


def ad_spec(campaign_id, country, label):
    return CampaignSpec(
        campaign_id=campaign_id, provider=FACEBOOK_PROVIDER,
        kind=KIND_FACEBOOK_ADS, location_label=label, budget_label="$6/day",
        duration_days=10, daily_budget=6.0, target_country=country,
    )


def farm_spec(campaign_id, provider, region, likes=300, fulfillment=1.0):
    return CampaignSpec(
        campaign_id=campaign_id, provider=provider, kind=KIND_LIKE_FARM,
        location_label=region, budget_label="$", duration_days=3,
        region=region, target_likes=likes, fulfillment=fulfillment,
    )


def tiny_config(specs, seed=3):
    return StudyConfig(
        seed=seed,
        scale=0.5,
        specs=specs,
        population=PopulationConfig(n_users=400, n_normal_pages=200,
                                    n_spam_pages=60),
        baseline_sample_size=100,
    )


class TestCustomStudies:
    def test_ads_only_study(self):
        config = tiny_config([ad_spec("ONLY-EG", "EG", "Egypt")])
        artifacts = HoneypotStudy(config).run()
        record = artifacts.dataset.campaign("ONLY-EG")
        assert record.total_likes > 0
        assert not artifacts.orders

    def test_farms_only_study(self):
        config = tiny_config([
            farm_spec("F1", SOCIALFORMULA, REGION_WORLDWIDE),
            farm_spec("F2", BOOSTLIKES, REGION_USA),
        ])
        artifacts = HoneypotStudy(config).run()
        assert not artifacts.campaigns
        assert artifacts.dataset.campaign("F1").total_likes == 150  # 300 * 0.5
        assert artifacts.dataset.campaign("F2").total_likes == 150

    def test_single_campaign_study(self):
        config = tiny_config([farm_spec("SOLO", SOCIALFORMULA, REGION_USA)])
        artifacts = HoneypotStudy(config).run()
        assert len(artifacts.dataset.campaigns) == 1
        assert len(artifacts.dataset.likers) > 0

    def test_experiment_runs_custom_specs(self):
        config = tiny_config([
            ad_spec("A", "IN", "India"),
            farm_spec("B", SOCIALFORMULA, REGION_WORLDWIDE),
        ])
        results = HoneypotExperiment(config).run()
        # analyses still compute over arbitrary campaign sets
        assert len(results.table1) == 2
        assert results.figure5.campaign_ids == ["A", "B"]

    def test_unknown_farm_provider_raises(self):
        config = tiny_config([farm_spec("X", "NoSuchFarm.com", REGION_USA)])
        with pytest.raises(KeyError):
            HoneypotStudy(config).run()

    def test_fulfillment_override_honoured(self):
        config = tiny_config(
            [farm_spec("HALF", SOCIALFORMULA, REGION_USA, likes=200,
                       fulfillment=0.5)]
        )
        artifacts = HoneypotStudy(config).run()
        assert artifacts.dataset.campaign("HALF").total_likes == 50  # 200*0.5*0.5
