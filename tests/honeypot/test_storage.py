"""Tests for repro.honeypot.storage (including the JSONL round trip)."""

import pytest

from repro.honeypot.storage import (
    BaselineRecord,
    CampaignRecord,
    HoneypotDataset,
    LikeObservation,
    LikerRecord,
)


def make_dataset():
    dataset = HoneypotDataset()
    dataset.global_gender = {"F": 0.46, "M": 0.54}
    dataset.global_age = {"13-17": 0.149, "18-24": 0.323}
    dataset.global_country = {"US": 0.14}
    dataset.campaigns["C1"] = CampaignRecord(
        campaign_id="C1",
        provider="Facebook.com",
        kind="facebook_ads",
        location_label="USA",
        budget_label="$6/day",
        duration_days=15,
        monitored_days=22.0,
        page_id=900,
        total_likes=2,
        observations=[
            LikeObservation(observed_at=120, user_id=1),
            LikeObservation(observed_at=240, user_id=2),
        ],
        terminated_liker_ids=[2],
    )
    dataset.likers[1] = LikerRecord(
        user_id=1, gender="F", age_bracket="18-24", country="US",
        friend_list_public=True, declared_friend_count=150,
        visible_friend_ids=[2, 7], liked_page_ids=[900, 901],
        declared_like_count=700, campaign_ids=["C1"],
    )
    dataset.likers[2] = LikerRecord(
        user_id=2, gender="M", age_bracket="13-17", country="IN",
        friend_list_public=False, declared_friend_count=None,
        terminated=True, campaign_ids=["C1"],
    )
    dataset.baseline = [BaselineRecord(user_id=50, declared_like_count=30)]
    return dataset


class TestDatasetAccessors:
    def test_campaign_lookup(self):
        dataset = make_dataset()
        assert dataset.campaign("C1").provider == "Facebook.com"
        assert dataset.campaign_ids() == ["C1"]

    def test_liker_ids_in_observation_order(self):
        dataset = make_dataset()
        assert dataset.campaign("C1").liker_ids == [1, 2]

    def test_likers_of(self):
        dataset = make_dataset()
        likers = dataset.likers_of("C1")
        assert [liker.user_id for liker in likers] == [1, 2]

    def test_total_likes(self):
        assert make_dataset().total_likes == 2


class TestJsonlRoundTrip:
    def test_round_trip_equal(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "study.jsonl"
        dataset.to_jsonl(path)
        loaded = HoneypotDataset.from_jsonl(path)
        assert loaded.global_gender == dataset.global_gender
        assert loaded.global_age == dataset.global_age
        assert loaded.campaign_ids() == dataset.campaign_ids()
        assert loaded.campaign("C1") == dataset.campaign("C1")
        assert loaded.likers == dataset.likers
        assert loaded.baseline == dataset.baseline

    def test_file_is_json_lines(self, tmp_path):
        import json
        path = tmp_path / "study.jsonl"
        make_dataset().to_jsonl(path)
        lines = path.read_text().strip().splitlines()
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds[0] == "meta"
        assert kinds.count("campaign") == 1
        assert kinds.count("liker") == 2
        assert kinds.count("baseline") == 1

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(Exception):
            HoneypotDataset.from_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "study.jsonl"
        dataset.to_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        loaded = HoneypotDataset.from_jsonl(path)
        assert loaded.total_likes == dataset.total_likes

    def test_small_study_round_trip(self, tmp_path, small_dataset):
        path = tmp_path / "full.jsonl"
        small_dataset.to_jsonl(path)
        loaded = HoneypotDataset.from_jsonl(path)
        assert loaded.total_likes == small_dataset.total_likes
        assert loaded.campaign_ids() == small_dataset.campaign_ids()
        assert len(loaded.likers) == len(small_dataset.likers)
        assert len(loaded.baseline) == len(small_dataset.baseline)
