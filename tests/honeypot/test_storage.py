"""Tests for repro.honeypot.storage (including the JSONL round trip)."""

import pytest

from repro.honeypot.storage import (
    CRAWL_PARTIAL,
    BaselineRecord,
    CampaignRecord,
    HoneypotDataset,
    LikeObservation,
    LikerRecord,
)


def make_dataset():
    dataset = HoneypotDataset()
    dataset.global_gender = {"F": 0.46, "M": 0.54}
    dataset.global_age = {"13-17": 0.149, "18-24": 0.323}
    dataset.global_country = {"US": 0.14}
    dataset.campaigns["C1"] = CampaignRecord(
        campaign_id="C1",
        provider="Facebook.com",
        kind="facebook_ads",
        location_label="USA",
        budget_label="$6/day",
        duration_days=15,
        monitored_days=22.0,
        page_id=900,
        total_likes=2,
        observations=[
            LikeObservation(observed_at=120, user_id=1),
            LikeObservation(observed_at=240, user_id=2),
        ],
        terminated_liker_ids=[2],
    )
    dataset.likers[1] = LikerRecord(
        user_id=1, gender="F", age_bracket="18-24", country="US",
        friend_list_public=True, declared_friend_count=150,
        visible_friend_ids=[2, 7], liked_page_ids=[900, 901],
        declared_like_count=700, campaign_ids=["C1"],
    )
    dataset.likers[2] = LikerRecord(
        user_id=2, gender="M", age_bracket="13-17", country="IN",
        friend_list_public=False, declared_friend_count=None,
        terminated=True, campaign_ids=["C1"],
    )
    dataset.baseline = [BaselineRecord(user_id=50, declared_like_count=30)]
    return dataset


class TestDatasetAccessors:
    def test_campaign_lookup(self):
        dataset = make_dataset()
        assert dataset.campaign("C1").provider == "Facebook.com"
        assert dataset.campaign_ids() == ["C1"]

    def test_liker_ids_in_observation_order(self):
        dataset = make_dataset()
        assert dataset.campaign("C1").liker_ids == [1, 2]

    def test_likers_of(self):
        dataset = make_dataset()
        likers = dataset.likers_of("C1")
        assert [liker.user_id for liker in likers] == [1, 2]

    def test_total_likes(self):
        assert make_dataset().total_likes == 2


class TestJsonlRoundTrip:
    def test_round_trip_equal(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "study.jsonl"
        dataset.to_jsonl(path)
        loaded = HoneypotDataset.from_jsonl(path)
        assert loaded.global_gender == dataset.global_gender
        assert loaded.global_age == dataset.global_age
        assert loaded.campaign_ids() == dataset.campaign_ids()
        assert loaded.campaign("C1") == dataset.campaign("C1")
        assert loaded.likers == dataset.likers
        assert loaded.baseline == dataset.baseline

    def test_file_is_json_lines(self, tmp_path):
        import json
        path = tmp_path / "study.jsonl"
        make_dataset().to_jsonl(path)
        lines = path.read_text().strip().splitlines()
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds[0] == "meta"
        assert kinds.count("campaign") == 1
        assert kinds.count("liker") == 2
        assert kinds.count("baseline") == 1

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(Exception):
            HoneypotDataset.from_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "study.jsonl"
        dataset.to_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        loaded = HoneypotDataset.from_jsonl(path)
        assert loaded.total_likes == dataset.total_likes

    def test_small_study_round_trip(self, tmp_path, small_dataset):
        path = tmp_path / "full.jsonl"
        small_dataset.to_jsonl(path)
        loaded = HoneypotDataset.from_jsonl(path)
        assert loaded.total_likes == small_dataset.total_likes
        assert loaded.campaign_ids() == small_dataset.campaign_ids()
        assert len(loaded.likers) == len(small_dataset.likers)
        assert len(loaded.baseline) == len(small_dataset.baseline)

    def test_partial_liker_round_trip(self, tmp_path):
        # A degraded crawl (crawl_status="partial") must survive the round
        # trip with its failed-field annotations intact.
        dataset = make_dataset()
        dataset.likers[3] = LikerRecord(
            user_id=3, gender="F", age_bracket="25-34", country="TR",
            friend_list_public=False, declared_friend_count=None,
            campaign_ids=["C1"],
            crawl_status=CRAWL_PARTIAL, failed_fields=["friends", "likes"],
        )
        path = tmp_path / "partial.jsonl"
        dataset.to_jsonl(path)
        loaded = HoneypotDataset.from_jsonl(path)
        liker = loaded.likers[3]
        assert liker.crawl_status == CRAWL_PARTIAL
        assert liker.failed_fields == ["friends", "likes"]
        assert not liker.has_friend_data and not liker.has_like_data

    def test_poll_gap_campaign_round_trip(self, tmp_path):
        # A campaign whose declared total exceeds its observations (polls
        # lost to crawl faults) round-trips without reconciling the two.
        dataset = make_dataset()
        record = dataset.campaigns["C1"]
        record.total_likes = 10  # 8 likes were never observed
        path = tmp_path / "gaps.jsonl"
        dataset.to_jsonl(path)
        loaded = HoneypotDataset.from_jsonl(path)
        assert loaded.campaign("C1").total_likes == 10
        assert len(loaded.campaign("C1").observations) == 2


class TestJsonlRobustness:
    def test_write_is_atomic_on_failure(self, tmp_path):
        # A write that blows up mid-stream must leave the previous good
        # file untouched (temp file + rename, never truncate-in-place).
        path = tmp_path / "study.jsonl"
        good = make_dataset()
        good.to_jsonl(path)
        before = path.read_text()
        bad = make_dataset()
        bad.global_gender = {"F": object()}  # not JSON serialisable
        with pytest.raises(TypeError):
            bad.to_jsonl(path)
        assert path.read_text() == before
        assert not (tmp_path / "study.jsonl.tmp").exists()

    def test_unparseable_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        good = make_dataset()
        good.to_jsonl(path)
        lines = path.read_text().splitlines()
        lines[2] = '{"type": "liker", "user_id": 1, TRUNCATED'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"corrupt\.jsonl:3: unparseable"):
            HoneypotDataset.from_jsonl(path)

    def test_unknown_record_type_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "global_gender": {}, '
                        '"global_age": {}, "global_country": {}}\n'
                        '{"type": "mystery"}\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2: unknown record type 'mystery'"):
            HoneypotDataset.from_jsonl(path)

    def test_missing_type_field_rejected(self, tmp_path):
        path = tmp_path / "untyped.jsonl"
        path.write_text('{"user_id": 1}\n')
        with pytest.raises(ValueError, match="unknown record type None"):
            HoneypotDataset.from_jsonl(path)

    def test_non_object_row_rejected(self, tmp_path):
        # Valid JSON that is not an object is corruption, not a record.
        path = tmp_path / "scalar.jsonl"
        path.write_text('{"type": "meta", "global_gender": {}, '
                        '"global_age": {}, "global_country": {}}\n'
                        '[1, 2, 3]\n')
        with pytest.raises(ValueError, match=r"scalar\.jsonl:2: .*not an object"):
            HoneypotDataset.from_jsonl(path)

    def test_malformed_record_names_file_and_line(self, tmp_path):
        # A parseable row missing required record fields must surface as a
        # ValueError naming the source line, not a raw TypeError/KeyError.
        path = tmp_path / "partial.jsonl"
        path.write_text('{"type": "meta", "global_gender": {}, '
                        '"global_age": {}, "global_country": {}}\n'
                        '{"type": "liker", "user_id": 7}\n')
        with pytest.raises(ValueError, match=r"partial\.jsonl:2: malformed 'liker'"):
            HoneypotDataset.from_jsonl(path)


class TestDurability:
    def test_to_jsonl_fsyncs_file_and_directory(self, tmp_path):
        from repro.util.durable import FSYNC_COUNTS

        before = FSYNC_COUNTS.get("dataset", 0)
        make_dataset().to_jsonl(tmp_path / "out.jsonl")
        # one fsync for the temp file's contents, one for the rename's
        # directory entry — rename alone does not order against the cache
        assert FSYNC_COUNTS.get("dataset", 0) == before + 2

    def test_salvage_drops_a_torn_final_record(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import EventTrace

        path = tmp_path / "out.jsonl"
        dataset = make_dataset()
        dataset.to_jsonl(path)
        with path.open("a") as handle:
            handle.write('{"kind": "liker", "user_id')  # the kill landed here
        metrics = MetricsRegistry(trace=EventTrace())
        salvaged = HoneypotDataset.from_jsonl(path, salvage=True, metrics=metrics)
        assert set(salvaged.likers) == set(dataset.likers)
        assert salvaged.campaigns.keys() == dataset.campaigns.keys()
        events = [e for e in metrics.trace.events if e.kind == "jsonl_salvage"]
        assert len(events) == 1
        assert events[0].fields["line"] > 1

    def test_torn_final_record_refuses_without_salvage(self, tmp_path):
        path = tmp_path / "out.jsonl"
        make_dataset().to_jsonl(path)
        with path.open("a") as handle:
            handle.write('{"kind": "liker"')
        with pytest.raises(ValueError):
            HoneypotDataset.from_jsonl(path)

    def test_salvage_does_not_mask_midfile_corruption(self, tmp_path):
        path = tmp_path / "out.jsonl"
        make_dataset().to_jsonl(path)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-5]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            HoneypotDataset.from_jsonl(path, salvage=True)

    def test_salvage_refuses_a_torn_interior_line(self, tmp_path):
        # Only a torn *final* line is the crash-mid-append signature; a
        # torn line followed by intact records means real corruption and
        # must refuse even under salvage, naming the damaged line.
        path = tmp_path / "out.jsonl"
        make_dataset().to_jsonl(path)
        lines = path.read_text().splitlines()
        torn_at = len(lines) - 1  # second-to-last record, 1-indexed
        lines[torn_at - 1] = lines[torn_at - 1][:20]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(
            ValueError, match=rf"out\.jsonl:{torn_at}: unparseable"
        ):
            HoneypotDataset.from_jsonl(path, salvage=True)
