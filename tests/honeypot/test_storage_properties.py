"""Property-based round-trip tests for the dataset's JSONL format."""

from hypothesis import given, settings, strategies as st

from repro.honeypot.storage import (
    BaselineRecord,
    CampaignRecord,
    HoneypotDataset,
    LikeObservation,
    LikerRecord,
)

_brackets = st.sampled_from(["13-17", "18-24", "25-34", "35-44", "45-54", "55+"])
_countries = st.sampled_from(["US", "IN", "EG", "TR", "FR", "OTHER"])
_ids = st.integers(min_value=1, max_value=10_000)


@st.composite
def liker_records(draw):
    public = draw(st.booleans())
    return LikerRecord(
        user_id=draw(_ids),
        gender=draw(st.sampled_from(["F", "M"])),
        age_bracket=draw(_brackets),
        country=draw(_countries),
        friend_list_public=public,
        declared_friend_count=draw(st.integers(0, 5000)) if public else None,
        visible_friend_ids=draw(st.lists(_ids, max_size=5)) if public else [],
        liked_page_ids=draw(st.lists(_ids, max_size=8)),
        declared_like_count=draw(st.integers(0, 10_000)),
        campaign_ids=draw(st.lists(st.sampled_from(["A", "B", "C"]),
                                   min_size=1, max_size=3, unique=True)),
        terminated=draw(st.booleans()),
    )


@st.composite
def campaign_records(draw, campaign_id="A"):
    times = sorted(draw(st.lists(st.integers(0, 100_000), max_size=10)))
    observations = [
        LikeObservation(observed_at=t, user_id=draw(_ids)) for t in times
    ]
    return CampaignRecord(
        campaign_id=campaign_id,
        provider=draw(st.sampled_from(["Facebook.com", "BoostLikes.com"])),
        kind=draw(st.sampled_from(["facebook_ads", "like_farm"])),
        location_label=draw(st.sampled_from(["USA", "Worldwide"])),
        budget_label="$6/day",
        duration_days=draw(st.integers(1, 20)),
        monitored_days=draw(st.floats(0, 40, allow_nan=False)),
        page_id=draw(_ids),
        total_likes=len(observations),
        observations=observations,
        terminated_liker_ids=draw(st.lists(_ids, max_size=4)),
        inactive=len(observations) == 0,
        removed_like_count=draw(st.integers(0, 20)),
        total_cost=draw(st.floats(0, 500, allow_nan=False)),
    )


@st.composite
def datasets(draw):
    dataset = HoneypotDataset()
    for campaign_id in draw(st.sets(st.sampled_from(["A", "B", "C"]), min_size=1)):
        dataset.campaigns[campaign_id] = draw(campaign_records(campaign_id=campaign_id))
    for liker in draw(st.lists(liker_records(), max_size=6)):
        dataset.likers[liker.user_id] = liker
    dataset.baseline = [
        BaselineRecord(user_id=draw(_ids), declared_like_count=draw(st.integers(0, 100)))
        for _ in range(draw(st.integers(0, 3)))
    ]
    dataset.global_gender = {"F": 0.46, "M": 0.54}
    dataset.global_age = {"18-24": 1.0}
    dataset.global_country = {"US": 1.0}
    return dataset


class TestJsonlProperties:
    @settings(max_examples=40, deadline=None)
    @given(dataset=datasets())
    def test_round_trip_identity(self, dataset):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ds.jsonl"
            dataset.to_jsonl(path)
            loaded = HoneypotDataset.from_jsonl(path)
        assert loaded.campaigns == dataset.campaigns
        assert loaded.likers == dataset.likers
        assert loaded.baseline == dataset.baseline
        assert loaded.global_gender == dataset.global_gender
        assert loaded.total_likes == dataset.total_likes
