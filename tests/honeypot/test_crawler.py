"""Tests for repro.honeypot.crawler."""

import pytest

from repro.honeypot.crawler import ProfileCrawler
from repro.osn.api import PlatformAPI
from repro.osn.faults import EndpointUnavailable, FaultProfile, FaultyPlatformAPI
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.util.rng import RngStream


@pytest.fixture()
def net():
    network = SocialNetwork()
    return network


def make_user(net, public=True, **kwargs):
    defaults = dict(gender=Gender.FEMALE, age=22, country="US",
                    friend_list_public=public)
    defaults.update(kwargs)
    return net.create_user(**defaults)


class TestCrawlLiker:
    def test_public_profile_fully_crawled(self, net):
        user = make_user(net, public=True)
        friend = make_user(net)
        net.add_friendship(user.user_id, friend.user_id)
        user.background_friend_count = 10
        page = net.create_page("P")
        net.like_page(user.user_id, page.page_id, time=0)
        user.background_like_count = 99

        record = ProfileCrawler(net).crawl_liker(user.user_id, ["C1"])
        assert record.friend_list_public
        assert record.visible_friend_ids == [friend.user_id]
        assert record.declared_friend_count == 11
        assert record.liked_page_ids == [page.page_id]
        assert record.declared_like_count == 100
        assert record.campaign_ids == ["C1"]
        assert record.gender == "F"
        assert record.age_bracket == "18-24"

    def test_private_friend_list_censored(self, net):
        user = make_user(net, public=False)
        friend = make_user(net)
        net.add_friendship(user.user_id, friend.user_id)
        record = ProfileCrawler(net).crawl_liker(user.user_id, [])
        assert not record.friend_list_public
        assert record.visible_friend_ids == []
        assert record.declared_friend_count is None
        # demographics still available via the insights reports
        assert record.country == "US"

    def test_page_likes_still_visible_when_friends_private(self, net):
        user = make_user(net, public=False)
        page = net.create_page("P")
        net.like_page(user.user_id, page.page_id, time=0)
        record = ProfileCrawler(net).crawl_liker(user.user_id, [])
        assert record.liked_page_ids == [page.page_id]

    def test_crawl_likers_batch(self, net):
        users = [make_user(net) for _ in range(3)]
        mapping = {u.user_id: ["C1"] for u in users}
        records = ProfileCrawler(net).crawl_likers(mapping)
        assert set(records) == {u.user_id for u in users}


class TestBaseline:
    def test_baseline_only_searchable(self, net):
        for _ in range(20):
            make_user(net, searchable=True)
        hidden = make_user(net, searchable=False)
        records = ProfileCrawler(net).crawl_baseline(RngStream(1), 20)
        assert hidden.user_id not in {r.user_id for r in records}
        assert len(records) == 20

    def test_baseline_caps_at_directory_size(self, net):
        for _ in range(5):
            make_user(net)
        records = ProfileCrawler(net).crawl_baseline(RngStream(1), 100)
        assert len(records) == 5


class TestTerminationRecheck:
    def test_only_terminated_reported(self, net):
        alive = make_user(net)
        dead = make_user(net)
        net.terminate_account(dead.user_id, time=5)
        crawler = ProfileCrawler(net)
        result = crawler.recheck_terminations([alive.user_id, dead.user_id])
        assert result == [dead.user_id]


class BrokenEndpointsAPI:
    """A real PlatformAPI with selected endpoints permanently failing."""

    def __init__(self, network, broken=()):
        self._inner = PlatformAPI(network)
        self._broken = set(broken)

    def __getattr__(self, name):
        if name in self._broken:
            def fail(*args, **kwargs):
                raise EndpointUnavailable(name)
            return fail
        return getattr(self._inner, name)


class TestGracefulDegradation:
    def test_complete_crawl_is_marked_complete(self, net):
        user = make_user(net)
        record = ProfileCrawler(net).crawl_liker(user.user_id, ["C1"])
        assert record.crawl_status == "complete"
        assert record.failed_fields == []
        assert record.has_friend_data and record.has_like_data

    def test_failed_friend_endpoints_yield_partial_record(self, net):
        user = make_user(net, public=True)
        friend = make_user(net)
        net.add_friendship(user.user_id, friend.user_id)
        page = net.create_page("P")
        net.like_page(user.user_id, page.page_id, time=0)
        api = BrokenEndpointsAPI(
            net, broken={"get_friend_list", "get_declared_friend_count"}
        )
        record = ProfileCrawler(net, api=api).crawl_liker(user.user_id, ["C1"])
        assert record.crawl_status == "partial"
        assert record.failed_fields == ["friends"]
        assert not record.has_friend_data
        assert not record.friend_list_public  # unknown, not claimed public
        assert record.visible_friend_ids == []
        assert record.declared_friend_count is None
        # the like crawl still succeeded
        assert record.has_like_data
        assert record.liked_page_ids == [page.page_id]
        # demographics always survive: they come from the insights view
        assert record.gender == "F" and record.country == "US"

    def test_all_user_endpoints_failing_still_yields_a_record(self, net):
        user = make_user(net)
        api = FaultyPlatformAPI(
            PlatformAPI(net),
            FaultProfile(profile_permafail_rate=1.0),
            RngStream(3, "faults"),
        )
        record = ProfileCrawler(net, api=api).crawl_liker(user.user_id, ["C1"])
        assert record.crawl_status == "partial"
        assert record.failed_fields == ["friends", "likes"]
        assert record.campaign_ids == ["C1"]
        assert record.age_bracket == "18-24"

    def test_baseline_drops_uncrawlable_users(self, net):
        for _ in range(10):
            make_user(net)
        api = BrokenEndpointsAPI(net, broken={"get_declared_like_count"})
        records = ProfileCrawler(net, api=api).crawl_baseline(RngStream(1), 10)
        assert records == []  # dropped, not recorded as fake zeros

    def test_recheck_counts_unreachable_profiles_as_alive(self, net):
        dead = make_user(net)
        net.terminate_account(dead.user_id, time=5)
        api = BrokenEndpointsAPI(net, broken={"get_profile"})
        crawler = ProfileCrawler(net, api=api)
        # even a genuinely dead profile is not reported when the crawl
        # itself fails: the terminated count stays a lower bound
        assert crawler.recheck_terminations([dead.user_id]) == []

    def test_insights_accessor_is_the_ground_truth_exemption(self, net):
        user = make_user(net)
        crawler = ProfileCrawler(net)
        profile = crawler.insights_profile(user.user_id)
        assert profile.country == "US"
        assert profile.gender is Gender.FEMALE
