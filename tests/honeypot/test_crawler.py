"""Tests for repro.honeypot.crawler."""

import pytest

from repro.honeypot.crawler import ProfileCrawler
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.util.rng import RngStream


@pytest.fixture()
def net():
    network = SocialNetwork()
    return network


def make_user(net, public=True, **kwargs):
    defaults = dict(gender=Gender.FEMALE, age=22, country="US",
                    friend_list_public=public)
    defaults.update(kwargs)
    return net.create_user(**defaults)


class TestCrawlLiker:
    def test_public_profile_fully_crawled(self, net):
        user = make_user(net, public=True)
        friend = make_user(net)
        net.add_friendship(user.user_id, friend.user_id)
        user.background_friend_count = 10
        page = net.create_page("P")
        net.like_page(user.user_id, page.page_id, time=0)
        user.background_like_count = 99

        record = ProfileCrawler(net).crawl_liker(user.user_id, ["C1"])
        assert record.friend_list_public
        assert record.visible_friend_ids == [friend.user_id]
        assert record.declared_friend_count == 11
        assert record.liked_page_ids == [page.page_id]
        assert record.declared_like_count == 100
        assert record.campaign_ids == ["C1"]
        assert record.gender == "F"
        assert record.age_bracket == "18-24"

    def test_private_friend_list_censored(self, net):
        user = make_user(net, public=False)
        friend = make_user(net)
        net.add_friendship(user.user_id, friend.user_id)
        record = ProfileCrawler(net).crawl_liker(user.user_id, [])
        assert not record.friend_list_public
        assert record.visible_friend_ids == []
        assert record.declared_friend_count is None
        # demographics still available via the insights reports
        assert record.country == "US"

    def test_page_likes_still_visible_when_friends_private(self, net):
        user = make_user(net, public=False)
        page = net.create_page("P")
        net.like_page(user.user_id, page.page_id, time=0)
        record = ProfileCrawler(net).crawl_liker(user.user_id, [])
        assert record.liked_page_ids == [page.page_id]

    def test_crawl_likers_batch(self, net):
        users = [make_user(net) for _ in range(3)]
        mapping = {u.user_id: ["C1"] for u in users}
        records = ProfileCrawler(net).crawl_likers(mapping)
        assert set(records) == {u.user_id for u in users}


class TestBaseline:
    def test_baseline_only_searchable(self, net):
        for _ in range(20):
            make_user(net, searchable=True)
        hidden = make_user(net, searchable=False)
        records = ProfileCrawler(net).crawl_baseline(RngStream(1), 20)
        assert hidden.user_id not in {r.user_id for r in records}
        assert len(records) == 20

    def test_baseline_caps_at_directory_size(self, net):
        for _ in range(5):
            make_user(net)
        records = ProfileCrawler(net).crawl_baseline(RngStream(1), 100)
        assert len(records) == 5


class TestTerminationRecheck:
    def test_only_terminated_reported(self, net):
        alive = make_user(net)
        dead = make_user(net)
        net.terminate_account(dead.user_id, time=5)
        crawler = ProfileCrawler(net)
        result = crawler.recheck_terminations([alive.user_id, dead.user_id])
        assert result == [dead.user_id]
