"""Tests for repro.honeypot.campaignspec."""

import pytest

from repro.ads.targeting import TargetingSpec
from repro.core import paperdata
from repro.honeypot.campaignspec import (
    KIND_FACEBOOK_ADS,
    KIND_LIKE_FARM,
    CampaignSpec,
    paper_campaigns,
)
from repro.util.validation import ValidationError


class TestPaperCampaigns:
    def test_thirteen_campaigns(self):
        assert len(paper_campaigns()) == 13

    def test_table1_order(self):
        ids = [spec.campaign_id for spec in paper_campaigns()]
        assert ids == [
            "FB-USA", "FB-FRA", "FB-IND", "FB-EGY", "FB-ALL",
            "BL-ALL", "BL-USA", "SF-ALL", "SF-USA",
            "AL-ALL", "AL-USA", "MS-ALL", "MS-USA",
        ]

    def test_five_ads_eight_farms(self):
        specs = paper_campaigns()
        ads = [s for s in specs if s.kind == KIND_FACEBOOK_ADS]
        farms = [s for s in specs if s.kind == KIND_LIKE_FARM]
        assert len(ads) == 5
        assert len(farms) == 8

    def test_ads_budget(self):
        for spec in paper_campaigns():
            if spec.is_facebook:
                assert spec.daily_budget == 6.0
                assert spec.duration_days == 15

    def test_paper_likes_match_paperdata(self):
        for spec in paper_campaigns():
            assert spec.paper_likes == paperdata.TABLE1_LIKES[spec.campaign_id]
            assert spec.paper_terminated == paperdata.TABLE1_TERMINATED[spec.campaign_id]

    def test_inactive_orders_have_no_outcome(self):
        by_id = {s.campaign_id: s for s in paper_campaigns()}
        for campaign_id in ("BL-ALL", "MS-ALL"):
            assert by_id[campaign_id].paper_likes is None
            assert by_id[campaign_id].fulfillment is None

    def test_farm_fulfillment_matches_likes(self):
        for spec in paper_campaigns():
            if spec.kind == KIND_LIKE_FARM and spec.paper_likes is not None:
                assert spec.fulfillment == pytest.approx(spec.paper_likes / 1000)

    def test_targeting_for_ads(self):
        by_id = {s.campaign_id: s for s in paper_campaigns()}
        assert by_id["FB-IND"].targeting() == TargetingSpec.country("IN")
        assert by_id["FB-ALL"].targeting().is_worldwide

    def test_targeting_rejected_for_farms(self):
        by_id = {s.campaign_id: s for s in paper_campaigns()}
        with pytest.raises(ValidationError):
            by_id["SF-ALL"].targeting()

    def test_total_paper_likes(self):
        # Table 1 sums to 6,222; the paper's Section 3 claims 6,292 (its own
        # internal inconsistency) — we track the table.
        total = sum(spec.paper_likes or 0 for spec in paper_campaigns())
        assert total == paperdata.TABLE1_TOTAL == 6222
        ads = sum(
            spec.paper_likes or 0 for spec in paper_campaigns() if spec.is_facebook
        )
        assert ads == paperdata.TOTAL_AD_LIKES == 1769


class TestCampaignSpecValidation:
    def test_ad_requires_budget(self):
        with pytest.raises(ValidationError):
            CampaignSpec(
                campaign_id="X", provider="Facebook.com", kind=KIND_FACEBOOK_ADS,
                location_label="USA", budget_label="$", duration_days=15,
            )

    def test_farm_requires_region(self):
        with pytest.raises(ValidationError):
            CampaignSpec(
                campaign_id="X", provider="F", kind=KIND_LIKE_FARM,
                location_label="USA", budget_label="$", duration_days=3,
                target_likes=1000,
            )

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            CampaignSpec(
                campaign_id="X", provider="F", kind="carrier-pigeon",
                location_label="USA", budget_label="$", duration_days=3,
            )
