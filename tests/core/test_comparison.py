"""Tests for repro.core.comparison."""

import pytest

from repro.core.comparison import (
    ComparisonRow,
    figure4_rows,
    full_comparison,
    render_comparison,
    table1_rows,
    table3_rows,
    termination_rows,
)


class TestComparisonRow:
    def test_ratio(self):
        row = ComparisonRow("T1", "x", paper_value=100, measured_value=120,
                            tolerance_ratio=1.5)
        assert row.ratio == pytest.approx(1.2)
        assert row.within_band

    def test_out_of_band(self):
        row = ComparisonRow("T1", "x", paper_value=100, measured_value=300,
                            tolerance_ratio=1.5)
        assert not row.within_band

    def test_band_symmetric(self):
        low = ComparisonRow("T1", "x", paper_value=100, measured_value=70,
                            tolerance_ratio=1.5)
        assert low.within_band
        too_low = ComparisonRow("T1", "x", paper_value=100, measured_value=60,
                                tolerance_ratio=1.5)
        assert not too_low.within_band

    def test_inactive_matches_none(self):
        row = ComparisonRow("T1", "x", paper_value=None, measured_value=None,
                            tolerance_ratio=1.5)
        assert row.within_band
        bad = ComparisonRow("T1", "x", paper_value=None, measured_value=50,
                            tolerance_ratio=1.5)
        assert not bad.within_band


class TestOnSmallStudy:
    """At 1/10 scale, counts shrink ~10x, so only structure is asserted."""

    def test_full_comparison_covers_every_experiment(self, small_results):
        rows = full_comparison(small_results)
        experiments = {row.experiment for row in rows}
        assert experiments == {"T1", "T2", "T3", "F4", "X1"}
        assert len(rows) > 50

    def test_table1_rows_cover_campaigns(self, small_results):
        rows = table1_rows(small_results)
        assert len(rows) == 13
        inactive = [r for r in rows if r.paper_value is None]
        assert len(inactive) == 2
        assert all(r.within_band for r in inactive)

    def test_figure4_medians_scale_free(self, small_results):
        """Per-liker medians do not scale with campaign size: they should be
        within band even on the small study."""
        rows = figure4_rows(small_results)
        out = [r for r in rows if not r.within_band]
        assert not out, [(r.quantity, r.measured_value) for r in out]

    def test_table3_friend_medians_scale_free(self, small_results):
        rows = [r for r in table3_rows(small_results)
                if "median friends" in r.quantity]
        out = [r for r in rows if not r.within_band]
        assert not out, [(r.quantity, r.measured_value) for r in out]

    def test_termination_rows(self, small_results):
        rows = termination_rows(small_results)
        assert len(rows) == 13

    def test_render(self, small_results):
        text = render_comparison(small_results)
        assert "Paper vs measured" in text
        assert "Verdict" in text
