"""Tests for repro.core (paperdata, results, experiment)."""

import pytest

from repro.core import HoneypotExperiment, paperdata
from repro.core.results import ExperimentResults
from repro.honeypot.study import StudyConfig


class TestPaperData:
    def test_table1_covers_thirteen_campaigns(self):
        assert len(paperdata.TABLE1_LIKES) == 13
        assert len(paperdata.TABLE1_TERMINATED) == 13

    def test_table1_totals_consistent(self):
        total = sum(v for v in paperdata.TABLE1_LIKES.values() if v)
        assert total == paperdata.TABLE1_TOTAL

    def test_table2_gender_shares_sum_to_100(self):
        for campaign_id, (female, male) in paperdata.TABLE2_GENDER.items():
            assert female + male in (99, 100, 101), campaign_id  # paper rounding

    def test_table2_age_rows_sum_to_100(self):
        for campaign_id, ages in paperdata.TABLE2_AGE.items():
            assert sum(ages) == pytest.approx(100.0, abs=1.0), campaign_id

    def test_table3_providers(self):
        assert set(paperdata.TABLE3) == {
            "Facebook.com", "BoostLikes.com", "SocialFormula.com",
            "AuthenticLikes.com", "MammothSocials.com", "ALMS",
        }

    def test_burst_trickle_partition(self):
        overlap = set(paperdata.BURST_CAMPAIGNS) & set(paperdata.TRICKLE_CAMPAIGNS)
        assert not overlap


class TestExperimentResults:
    def test_tables_cached(self, small_results):
        assert small_results.table1 is small_results.table1
        assert small_results.figure5 is small_results.figure5

    def test_temporal_cached(self, small_results):
        a = small_results.temporal("SF-ALL")
        b = small_results.temporal("SF-ALL")
        assert a is b

    def test_all_shape_checks_pass(self, small_results):
        failing = [c for c in small_results.shape_checks() if not c.passed]
        assert not failing, failing

    def test_shape_check_details_informative(self, small_results):
        for check in small_results.shape_checks():
            assert check.name
            assert check.detail

    def test_passed_all(self, small_results):
        assert small_results.passed_all()

    def test_sharded_execution_skips_operator_overlap(self, small_results):
        # Shard isolation means AL/MS can never share a clickworker pool,
        # so the overlap check is skipped (not failed) for sharded datasets.
        sharded = ExperimentResults(
            dataset=small_results.dataset, sharded_execution=True
        )
        names = {c.name for c in sharded.shape_checks()}
        assert "al-ms-share-likers" not in names
        full = {c.name for c in small_results.shape_checks()}
        assert full - names == {"al-ms-share-likers"}


class TestHoneypotExperiment:
    def test_artifacts_before_run_rejected(self):
        experiment = HoneypotExperiment(StudyConfig.small())
        with pytest.raises(RuntimeError):
            _ = experiment.artifacts

    def test_run_returns_results(self, small_experiment):
        assert isinstance(
            ExperimentResults(dataset=small_experiment.artifacts.dataset),
            ExperimentResults,
        )

    def test_factories(self):
        assert HoneypotExperiment.small().config.scale == pytest.approx(0.1)
        assert HoneypotExperiment.paper_scale().config.scale == pytest.approx(1.0)
