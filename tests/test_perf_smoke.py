"""A coarse wall-time guard against gross performance regressions.

The columnar OSN stores took the paper-scale study from ~10s to under 2s
and the small study to a fraction of a second (see ``BENCH_pipeline.json``,
``BENCH_history.jsonl`` and ``make profile``).  This smoke test runs the
small study under a generous budget — a multiple of the recorded columnar
baseline — so that an accidental return to per-item writes (or any other
order-of-magnitude regression) surfaces in tier-1 without making the suite
timing-sensitive on slow CI machines.

The multiplier defaults to 5x for tier-1 runs; the CI ``bench-smoke`` job
exports ``REPRO_PERF_BUDGET_X=2`` to hold merges to a tighter >2x gate on
a dedicated (lint-and-build-only) runner.

The default study runs with observability *disabled* (the shared no-op
registry), so ``test_small_study_within_budget`` also gates the disabled
registry's overhead: instrumented call sites must stay within the same
budget the uninstrumented pipeline met.  A second test holds the enabled
registry to the same bound.
"""

from __future__ import annotations

import os
import time

from repro.core.experiment import HoneypotExperiment
from repro.honeypot.study import StudyConfig
from repro.obs.metrics import ObservabilityConfig

#: Wall seconds for ``HoneypotExperiment.small().run()`` on the columnar
#: stores, recorded alongside BENCH_pipeline.json and rounded up for
#: headroom over host noise.
RECORDED_BASELINE_SECONDS = 0.35

#: Fail only on gross regressions (default >5x; CI bench-smoke sets 2x);
#: honest perf tracking lives in ``make profile``, not in the test suite.
BUDGET_MULTIPLIER = float(os.environ.get("REPRO_PERF_BUDGET_X", "5"))
BUDGET_SECONDS = BUDGET_MULTIPLIER * RECORDED_BASELINE_SECONDS


def test_small_study_within_budget():
    # The default config keeps observability off, so this run doubles as
    # the no-measurable-overhead gate for the disabled (no-op) registry.
    start = time.perf_counter()
    results = HoneypotExperiment.small().run()
    elapsed = time.perf_counter() - start
    assert results.dataset.campaigns, "study produced no campaigns"
    assert elapsed < BUDGET_SECONDS, (
        f"small study took {elapsed:.2f}s, budget is {BUDGET_SECONDS:.1f}s "
        f"({BUDGET_MULTIPLIER:g}x the {RECORDED_BASELINE_SECONDS}s recorded "
        "columnar baseline); see benchmarks/perf, BENCH_pipeline.json and "
        "BENCH_history.jsonl for the perf trajectory"
    )


def test_small_study_with_observability_within_budget():
    # The enabled registry batches hot-loop updates, so even full metrics
    # collection must fit the same generous budget.
    config = StudyConfig.small()
    config.observability = ObservabilityConfig(enabled=True)
    start = time.perf_counter()
    results = HoneypotExperiment(config).run()
    elapsed = time.perf_counter() - start
    assert results.dataset.campaigns, "study produced no campaigns"
    assert elapsed < BUDGET_SECONDS, (
        f"observed small study took {elapsed:.2f}s, budget is "
        f"{BUDGET_SECONDS:.1f}s — metrics collection must stay cheap"
    )
