"""A coarse wall-time guard against gross performance regressions.

The bulk OSN write paths took the paper-scale study from ~10s to ~4s and
the small study to well under a second (see ``BENCH_pipeline.json`` and
``make profile``).  This smoke test runs the small study under a very
generous budget — 5x the recorded baseline — so that an accidental return
to per-item writes (or any other order-of-magnitude regression) surfaces
in tier-1 without making the suite timing-sensitive on slow CI machines.
"""

from __future__ import annotations

import time

from repro.core.experiment import HoneypotExperiment

#: Wall seconds for ``HoneypotExperiment.small().run()`` recorded on the CI
#: machine alongside BENCH_pipeline.json, rounded up for headroom.
RECORDED_BASELINE_SECONDS = 0.8

#: Fail only on gross (>5x) regressions; honest perf tracking lives in
#: ``make profile``, not in the test suite.
BUDGET_SECONDS = 5 * RECORDED_BASELINE_SECONDS


def test_small_study_within_budget():
    start = time.perf_counter()
    results = HoneypotExperiment.small().run()
    elapsed = time.perf_counter() - start
    assert results.dataset.campaigns, "study produced no campaigns"
    assert elapsed < BUDGET_SECONDS, (
        f"small study took {elapsed:.2f}s, budget is {BUDGET_SECONDS:.1f}s "
        f"(5x the {RECORDED_BASELINE_SECONDS}s recorded baseline); "
        "see benchmarks/perf and BENCH_pipeline.json for the perf trajectory"
    )
