"""The write-ahead journal: appends, salvage, and replay-verify resume."""

from __future__ import annotations

import json

import pytest

from repro.ckpt import CheckpointError, DatasetJournal, read_journal
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import EventTrace


def _fresh(path, seed=7, config_hash="abc"):
    return DatasetJournal.start(path, seed=seed, config_hash=config_hash)


class TestAppend:
    def test_appends_land_as_jsonl_lines(self, tmp_path):
        journal = _fresh(tmp_path / "j.jsonl")
        journal.append({"type": "liker", "user_id": 1})
        journal.append({"type": "liker", "user_id": 2})
        journal.close()
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 3  # header + 2 records
        assert json.loads(lines[0])["type"] == "journal-header"
        assert json.loads(lines[2]) == {"type": "liker", "user_id": 2}

    def test_every_append_fsyncs(self, tmp_path):
        journal = _fresh(tmp_path / "j.jsonl")
        assert journal.fsyncs == 1  # the header
        journal.append({"a": 1})
        journal.append({"a": 2})
        assert journal.fsyncs == 3
        assert journal.records_written == 2
        assert journal.position == 2
        journal.close()

    def test_append_after_close_raises(self, tmp_path):
        journal = _fresh(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(CheckpointError, match="not open"):
            journal.append({"a": 1})


class TestRecovery:
    def test_missing_file_is_empty_recovery(self, tmp_path):
        recovery = read_journal(tmp_path / "absent.jsonl")
        assert recovery.salvaged == 0
        assert recovery.header is None
        assert not recovery.torn

    def test_clean_journal_round_trips(self, tmp_path):
        journal = _fresh(tmp_path / "j.jsonl")
        rows = [{"type": "liker", "user_id": i} for i in range(5)]
        for row in rows:
            journal.append(row)
        journal.close()
        recovery = read_journal(tmp_path / "j.jsonl")
        assert recovery.records == rows
        assert recovery.header["seed"] == 7
        assert not recovery.torn

    def test_torn_final_line_is_dropped_and_reported(self, tmp_path):
        journal = _fresh(tmp_path / "j.jsonl")
        journal.append({"type": "liker", "user_id": 1})
        journal.close()
        path = tmp_path / "j.jsonl"
        with path.open("a") as handle:
            handle.write('{"type": "liker", "user_i')  # the kill landed here
        metrics = MetricsRegistry(trace=EventTrace())
        recovery = read_journal(path, metrics=metrics)
        assert recovery.torn
        assert recovery.salvaged == 1
        events = [e for e in metrics.trace.events if e.kind == "journal_salvage"]
        assert len(events) == 1
        assert events[0].fields["salvaged"] == 1

    def test_midfile_corruption_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = _fresh(path)
        journal.append({"user_id": 1})
        journal.append({"user_id": 2})
        journal.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-4]  # tear a line that is NOT the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="mid-file damage"):
            read_journal(path)

    def test_missing_header_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "liker", "user_id": 1}\n')
        with pytest.raises(CheckpointError, match="missing header"):
            read_journal(path)

    def test_wrong_schema_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "journal-header", "schema": "other@9"}\n')
        with pytest.raises(CheckpointError, match="refusing to resume"):
            read_journal(path)


class TestResume:
    def _crashed(self, tmp_path, rows):
        path = tmp_path / "j.jsonl"
        journal = _fresh(path)
        for row in rows:
            journal.append(row)
        journal.close()
        with path.open("a") as handle:
            handle.write('{"torn')
        return path

    def test_replay_verifies_then_appends(self, tmp_path):
        rows = [{"user_id": 1}, {"user_id": 2}]
        path = self._crashed(tmp_path, rows)
        recovery = read_journal(path)
        journal = DatasetJournal.resume(path, recovery, seed=7, config_hash="abc")
        for row in rows:  # the deterministic replay re-produces these
            journal.append(row)
        journal.append({"user_id": 3})  # ...then new ground
        journal.close()
        assert journal.replayed == 2
        assert journal.records_written == 1
        assert journal.position == 3
        final = read_journal(path)
        assert final.records == rows + [{"user_id": 3}]
        assert not final.torn  # the torn tail was truncated on resume

    def test_divergent_replay_refuses(self, tmp_path):
        path = self._crashed(tmp_path, [{"user_id": 1}])
        journal = DatasetJournal.resume(
            path, read_journal(path), seed=7, config_hash="abc"
        )
        with pytest.raises(CheckpointError, match="journal divergence"):
            journal.append({"user_id": 99})
        journal.close()

    def test_wrong_seed_refuses(self, tmp_path):
        path = self._crashed(tmp_path, [{"user_id": 1}])
        with pytest.raises(CheckpointError, match="seed"):
            DatasetJournal.resume(path, read_journal(path), seed=8, config_hash="abc")

    def test_wrong_config_refuses(self, tmp_path):
        path = self._crashed(tmp_path, [{"user_id": 1}])
        with pytest.raises(CheckpointError, match="config fingerprint"):
            DatasetJournal.resume(path, read_journal(path), seed=7, config_hash="zzz")

    def test_headerless_salvage_degrades_to_fresh_start(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "journal-he')  # killed during the very first write
        recovery = read_journal(path)
        journal = DatasetJournal.resume(path, recovery, seed=7, config_hash="abc")
        journal.append({"user_id": 1})
        journal.close()
        final = read_journal(path)
        assert final.header["seed"] == 7
        assert final.records == [{"user_id": 1}]
