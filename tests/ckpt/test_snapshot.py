"""Snapshot files and the checkpoint manifest: integrity and refusals."""

from __future__ import annotations

import json

import pytest

from repro.ckpt import (
    CheckpointError,
    SNAPSHOT_SCHEMA,
    barrier_key,
    load_checkpoint_manifest,
    load_snapshot,
    write_checkpoint_manifest,
    write_snapshot,
)
from repro.ckpt.snapshot import MANIFEST_NAME, snapshot_filename

STATE = {"rng": {"study": {"seed": 7}}, "metrics": {"counters": {"a": 1}}}


def _payload(phase="simulate", sim_time=1440):
    return {
        "phase": phase,
        "sim_time": sim_time,
        "seed": 7,
        "config_hash": "abc",
        "journal_records": 12,
        "state": STATE,
    }


class TestSnapshotRoundTrip:
    def test_write_then_load(self, tmp_path):
        entry = write_snapshot(tmp_path, _payload())
        assert entry["file"] == snapshot_filename("simulate", 1440)
        assert entry["journal_records"] == 12
        loaded = load_snapshot(tmp_path, entry)
        assert loaded["state"] == STATE
        assert loaded["schema"] == SNAPSHOT_SCHEMA

    def test_rewrite_is_idempotent(self, tmp_path):
        first = write_snapshot(tmp_path, _payload())
        second = write_snapshot(tmp_path, _payload())
        assert first == second
        snapshots = [p for p in tmp_path.iterdir() if p.name.startswith("snapshot-")]
        assert len(snapshots) == 1

    def test_missing_file_refuses(self, tmp_path):
        entry = write_snapshot(tmp_path, _payload())
        (tmp_path / entry["file"]).unlink()
        with pytest.raises(CheckpointError, match="missing"):
            load_snapshot(tmp_path, entry)

    def test_tampered_file_fails_sha256(self, tmp_path):
        entry = write_snapshot(tmp_path, _payload())
        path = tmp_path / entry["file"]
        payload = json.loads(path.read_text())
        payload["state"]["metrics"]["counters"]["a"] = 999
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        with pytest.raises(CheckpointError, match="sha256"):
            load_snapshot(tmp_path, entry)

    def test_unknown_schema_refuses(self, tmp_path):
        entry = write_snapshot(tmp_path, _payload())
        path = tmp_path / entry["file"]
        payload = json.loads(path.read_text())
        payload["schema"] = "repro.ckpt/snapshot@99"
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        path.write_text(text)
        entry = dict(entry)
        import hashlib

        entry["sha256"] = hashlib.sha256(text.encode()).hexdigest()
        with pytest.raises(CheckpointError, match="schema"):
            load_snapshot(tmp_path, entry)


class TestManifest:
    def test_absent_manifest_is_none(self, tmp_path):
        assert load_checkpoint_manifest(tmp_path, 7, "abc") is None

    def test_round_trip(self, tmp_path):
        entry = write_snapshot(tmp_path, _payload())
        write_checkpoint_manifest(tmp_path, 7, "abc", 3.0, [entry])
        manifest = load_checkpoint_manifest(tmp_path, 7, "abc")
        assert manifest["every_days"] == 3.0
        assert manifest["snapshots"] == [entry]

    def test_wrong_seed_refuses(self, tmp_path):
        write_checkpoint_manifest(tmp_path, 7, "abc", None, [])
        with pytest.raises(CheckpointError, match="seed"):
            load_checkpoint_manifest(tmp_path, 8, "abc")

    def test_wrong_config_refuses(self, tmp_path):
        write_checkpoint_manifest(tmp_path, 7, "abc", None, [])
        with pytest.raises(CheckpointError, match="fingerprint"):
            load_checkpoint_manifest(tmp_path, 7, "zzz")

    def test_unparseable_manifest_refuses(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint_manifest(tmp_path, 7, "abc")

    def test_wrong_schema_refuses(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"schema": "x@1"}))
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint_manifest(tmp_path, 7, "abc")


class TestBarrierKey:
    def test_identity(self):
        assert barrier_key("simulate", 1440) == "simulate@1440"
        assert barrier_key("build", 0.0) == "build@0"
