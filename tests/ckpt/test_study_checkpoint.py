"""Study-level checkpointing: identity, verified resume, chaos, interrupt.

These run a deliberately tiny study (scale 0.02) so each case stays well
under a second of simulated work; the subprocess SIGKILL harness in
``tests/test_checkpoint_resume.py`` covers the real crash path.
"""

from __future__ import annotations

import pytest

from repro.ckpt import CheckpointConfig, CheckpointError
from repro.honeypot.study import HoneypotStudy, StudyConfig
from repro.osn.faults import FaultProfile


def tiny_config(tmp_path=None, **checkpoint_kwargs) -> StudyConfig:
    config = StudyConfig(seed=11, scale=0.02)
    if tmp_path is not None:
        config.checkpoint = CheckpointConfig(directory=tmp_path, **checkpoint_kwargs)
    return config


@pytest.fixture(scope="module")
def plain_bytes(tmp_path_factory):
    """Dataset bytes of the tiny study run with checkpointing off."""
    artifacts = HoneypotStudy(tiny_config()).run()
    assert artifacts.checkpoint is None
    path = tmp_path_factory.mktemp("plain") / "dataset.jsonl"
    artifacts.dataset.to_jsonl(path)
    return path.read_bytes()


class TestCheckpointedRun:
    def test_byte_identical_to_unchecked_run(self, tmp_path, plain_bytes):
        config = tiny_config(tmp_path / "ck", every_days=3.0)
        artifacts = HoneypotStudy(config).run()
        out = tmp_path / "dataset.jsonl"
        artifacts.dataset.to_jsonl(out)
        assert out.read_bytes() == plain_bytes
        stats = artifacts.checkpoint
        assert stats["resumed"] is False
        # 4 phase boundaries + the every_days mid-simulation barriers
        assert stats["snapshots_written"] > 4
        assert stats["journal_records_written"] > 0
        assert stats["journal_fsyncs"] >= stats["journal_records_written"]

    def test_resume_replays_a_complete_run_byte_identically(
        self, tmp_path, plain_bytes
    ):
        directory = tmp_path / "ck"
        HoneypotStudy(tiny_config(directory, every_days=3.0)).run()
        artifacts = HoneypotStudy(tiny_config(directory, resume=True)).run()
        out = tmp_path / "dataset.jsonl"
        artifacts.dataset.to_jsonl(out)
        assert out.read_bytes() == plain_bytes
        stats = artifacts.checkpoint
        assert stats["resumed"] is True
        assert stats["barriers_validated"] > 4
        assert stats["journal_records_written"] == 0  # everything replay-verified
        assert stats["snapshots_written"] == 0

    def test_existing_directory_without_resume_refuses(self, tmp_path):
        directory = tmp_path / "ck"
        HoneypotStudy(tiny_config(directory)).run()
        with pytest.raises(CheckpointError, match="--resume"):
            HoneypotStudy(tiny_config(directory)).run()

    def test_resume_with_a_different_seed_refuses(self, tmp_path):
        directory = tmp_path / "ck"
        HoneypotStudy(tiny_config(directory)).run()
        config = tiny_config(directory, resume=True)
        config.seed = 12
        with pytest.raises(CheckpointError, match="seed"):
            HoneypotStudy(config).run()

    def test_resume_with_a_different_config_refuses(self, tmp_path):
        directory = tmp_path / "ck"
        HoneypotStudy(tiny_config(directory)).run()
        config = tiny_config(directory, resume=True)
        config.baseline_sample_size += 1
        with pytest.raises(CheckpointError, match="fingerprint"):
            HoneypotStudy(config).run()


class TestChaosResume:
    def test_chaos_run_resumes_byte_identically(self, tmp_path):
        """Breaker/retry state survives resume under fault injection."""
        plain = tiny_config()
        plain.fault_profile = FaultProfile.default()
        reference = HoneypotStudy(plain).run()
        ref_path = tmp_path / "ref.jsonl"
        reference.dataset.to_jsonl(ref_path)

        directory = tmp_path / "ck"
        first = tiny_config(directory, every_days=3.0)
        first.fault_profile = FaultProfile.default()
        HoneypotStudy(first).run()

        again = tiny_config(directory, resume=True)
        again.fault_profile = FaultProfile.default()
        artifacts = HoneypotStudy(again).run()
        out = tmp_path / "resumed.jsonl"
        artifacts.dataset.to_jsonl(out)
        assert out.read_bytes() == ref_path.read_bytes()
        assert artifacts.checkpoint["resumed"] is True
        assert artifacts.checkpoint["barriers_validated"] > 0


class TestInterrupt:
    def test_keyboard_interrupt_writes_a_final_snapshot(self, tmp_path):
        directory = tmp_path / "ck"
        config = tiny_config(directory)
        study = HoneypotStudy(config)

        original = HoneypotStudy._collect_phase

        def bomb(self, components, manager):
            raise KeyboardInterrupt

        HoneypotStudy._collect_phase = bomb
        try:
            with pytest.raises(KeyboardInterrupt):
                study.run()
        finally:
            HoneypotStudy._collect_phase = original
        snapshots = sorted(p.name for p in directory.glob("snapshot-interrupt-*"))
        assert len(snapshots) == 1
        # the interrupted run resumes cleanly from its phase snapshots
        artifacts = HoneypotStudy(tiny_config(directory, resume=True)).run()
        assert artifacts.checkpoint["resumed"] is True
