"""CheckpointManager: barrier persistence, verified resume, refusals."""

from __future__ import annotations

import pytest

from repro.ckpt import (
    CheckpointConfig,
    CheckpointError,
    CheckpointManager,
    MANIFEST_NAME,
)
from repro.util.timeutil import DAY

STATE_A = {"rng": {"study": 1}, "metrics": {"counters": {"x": 1}}}
STATE_B = {"rng": {"study": 2}, "metrics": {"counters": {"x": 5}}}


def _open(directory, resume=False, every_days=None, seed=7, config_hash="abc"):
    config = CheckpointConfig(directory=directory, every_days=every_days,
                              resume=resume)
    return CheckpointManager.open(config, seed=seed, config_hash=config_hash)


class TestFreshRun:
    def test_open_creates_journal_and_manifest(self, tmp_path):
        manager = _open(tmp_path / "ck")
        manager.close()
        assert (tmp_path / "ck" / "journal.jsonl").exists()
        assert (tmp_path / "ck" / MANIFEST_NAME).exists()

    def test_barriers_persist_snapshots(self, tmp_path):
        manager = _open(tmp_path / "ck")
        assert manager.at_barrier("build", 0, STATE_A) is None
        manager.journal.append({"type": "liker", "user_id": 1})
        assert manager.at_barrier("simulate", 1440, STATE_B) is None
        stats = manager.stats()
        manager.close()
        assert stats["snapshots_written"] == 2
        assert stats["snapshot_bytes"] > 0
        # 2 phase markers + 1 dataset record
        assert stats["journal_records_written"] == 3
        assert stats["resumed"] is False

    def test_existing_run_without_resume_refuses(self, tmp_path):
        _open(tmp_path / "ck").close()
        with pytest.raises(CheckpointError, match="--resume"):
            _open(tmp_path / "ck")

    def test_barrier_times_cadence(self, tmp_path):
        manager = _open(tmp_path / "ck", every_days=2.0)
        assert manager.barrier_times(0, 7 * DAY) == [2 * DAY, 4 * DAY, 6 * DAY]
        manager.close()
        plain = _open(tmp_path / "ck2")
        assert plain.barrier_times(0, 7 * DAY) == []
        plain.close()


class TestResume:
    def _crashed_run(self, tmp_path):
        """A run that checkpointed twice, journaled once, then 'died'."""
        manager = _open(tmp_path / "ck", every_days=1.0)
        manager.at_barrier("build", 0, STATE_A)
        manager.journal.append({"type": "liker", "user_id": 1})
        manager.at_barrier("simulate", 1440, STATE_B)
        manager.close()  # a SIGKILL is harsher, but the files are the same
        return tmp_path / "ck"

    def test_replay_validates_barriers_and_returns_stored_state(self, tmp_path):
        directory = self._crashed_run(tmp_path)
        manager = _open(directory, resume=True)
        assert manager.resumed is True
        assert manager.every_days == 1.0  # manifest cadence is authoritative
        assert manager.at_barrier("build", 0, STATE_A) == STATE_A
        manager.journal.append({"type": "liker", "user_id": 1})
        assert manager.at_barrier("simulate", 1440, STATE_B) == STATE_B
        # past the last stored barrier: fresh mode again
        assert manager.at_barrier("collect", 2000, STATE_B) is None
        stats = manager.stats()
        manager.close()
        assert stats["barriers_validated"] == 2
        assert stats["journal_records_replayed"] == 3
        assert stats["snapshots_written"] == 1

    def test_divergent_state_refuses(self, tmp_path):
        directory = self._crashed_run(tmp_path)
        manager = _open(directory, resume=True)
        with pytest.raises(CheckpointError, match="resume diverged"):
            manager.at_barrier("build", 0, {"rng": {"study": 999}})
        manager.close()

    def test_journal_position_mismatch_refuses(self, tmp_path):
        directory = self._crashed_run(tmp_path)
        journal = directory / "journal.jsonl"
        header = journal.read_text().splitlines()[0]
        journal.write_text(header + "\n")  # every record after the header lost
        manager = _open(directory, resume=True)
        manager.at_barrier("build", 0, STATE_A)
        # replay "forgets" the journaled liker record -> position drifts
        with pytest.raises(CheckpointError, match="journal records"):
            manager.at_barrier("simulate", 1440, STATE_B)
        manager.close()

    def test_wrong_seed_refuses(self, tmp_path):
        directory = self._crashed_run(tmp_path)
        with pytest.raises(CheckpointError, match="seed"):
            _open(directory, resume=True, seed=8)

    def test_resume_empty_directory_degrades_to_fresh(self, tmp_path):
        manager = _open(tmp_path / "never-used", resume=True)
        assert manager.resumed is False
        assert manager.at_barrier("build", 0, STATE_A) is None
        manager.close()


class TestInterrupt:
    def test_interrupt_snapshot_is_never_validated(self, tmp_path):
        manager = _open(tmp_path / "ck", every_days=1.0)
        manager.at_barrier("build", 0, STATE_A)
        manager.interrupt(STATE_B, sim_time=777)
        manager.close()
        resumed = _open(tmp_path / "ck", resume=True)
        # the mid-phase interrupt snapshot exists but no barrier matches it
        assert resumed.at_barrier("build", 0, STATE_A) == STATE_A
        assert resumed.at_barrier("simulate", 777, STATE_B) is None
        resumed.close()

    def test_interrupt_without_state_is_a_noop(self, tmp_path):
        manager = _open(tmp_path / "ck")
        manager.interrupt(None, sim_time=0)
        assert manager.stats()["snapshots_written"] == 0
        manager.close()


class TestConfigValidation:
    def test_negative_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(directory=tmp_path, every_days=-1.0)
