"""Tests for repro.sim.engine and repro.sim.clock."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.util.validation import ValidationError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(start=100).now == 100

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(50)
        assert clock.now == 50

    def test_no_rewind(self):
        clock = SimClock(start=10)
        with pytest.raises(ValidationError):
            clock.advance_to(5)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(start=10)
        clock.advance_to(10)
        assert clock.now == 10

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            SimClock(start=-1)


class TestEventEngine:
    def test_fires_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(30, lambda t: fired.append(("c", t)))
        engine.schedule(10, lambda t: fired.append(("a", t)))
        engine.schedule(20, lambda t: fired.append(("b", t)))
        engine.run()
        assert fired == [("a", 10), ("b", 20), ("c", 30)]

    def test_ties_fire_in_schedule_order(self):
        engine = EventEngine()
        fired = []
        for name in "abc":
            engine.schedule(5, lambda t, n=name: fired.append(n))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_stops_and_advances_clock(self):
        engine = EventEngine()
        fired = []
        engine.schedule(10, fired.append)
        engine.schedule(100, fired.append)
        engine.run_until(50)
        assert fired == [10]
        assert engine.clock.now == 50
        engine.run_until(100)
        assert fired == [10, 100]

    def test_run_until_boundary_inclusive(self):
        engine = EventEngine()
        fired = []
        engine.schedule(50, fired.append)
        engine.run_until(50)
        assert fired == [50]

    def test_cannot_schedule_in_past(self):
        engine = EventEngine()
        engine.schedule(10, lambda t: None)
        engine.run_until(20)
        with pytest.raises(ValidationError):
            engine.schedule(5, lambda t: None)

    def test_schedule_after(self):
        engine = EventEngine()
        engine.run_until(40)
        fired = []
        engine.schedule_after(10, fired.append)
        engine.run()
        assert fired == [50]

    def test_cancel(self):
        engine = EventEngine()
        fired = []
        event = engine.schedule(10, fired.append)
        event.cancel()
        engine.run()
        assert fired == []
        assert engine.fired == 0

    def test_pending_counts_uncancelled(self):
        engine = EventEngine()
        keep = engine.schedule(10, lambda t: None)
        drop = engine.schedule(20, lambda t: None)
        drop.cancel()
        assert engine.pending == 1
        del keep

    def test_events_scheduled_during_run(self):
        engine = EventEngine()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 30:
                engine.schedule(t + 10, chain)

        engine.schedule(10, chain)
        engine.run()
        assert fired == [10, 20, 30]

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_property_all_events_fire_in_order(self, times):
        engine = EventEngine()
        fired = []
        for t in times:
            engine.schedule(t, fired.append)
        engine.run()
        assert fired == sorted(times)
        assert engine.fired == len(times)


class TestStateDict:
    def _engine_with_history(self):
        engine = EventEngine()
        fired = []
        for t in (10, 20, 30, 40):
            engine.schedule(t, fired.append)
        engine.run_until(25)
        return engine, fired

    def test_round_trip_restores_clock_and_counters(self):
        engine, _ = self._engine_with_history()
        state = engine.state_dict()
        rebuilt = EventEngine()
        fired = []
        for t in (10, 20, 30, 40):
            rebuilt.schedule(t, fired.append)
        rebuilt.run_until(25)  # deterministic replay rebuilds the queue...
        rebuilt.load_state_dict(state)  # ...and the state loads over it
        assert rebuilt.clock.now == engine.clock.now
        assert rebuilt.fired == engine.fired
        rebuilt.run()
        assert fired == [10, 20, 30, 40]

    def test_state_is_json_pure(self):
        import json

        engine, _ = self._engine_with_history()
        state = engine.state_dict()
        assert json.loads(json.dumps(state)) == state

    def test_load_refuses_a_different_queue(self):
        engine, _ = self._engine_with_history()
        state = engine.state_dict()
        other = EventEngine()
        other.schedule(99, lambda t: None)
        with pytest.raises(ValidationError):
            other.load_state_dict(state)

    def test_queue_signature_ignores_cancelled_events(self):
        engine = EventEngine()
        keep = engine.schedule(10, lambda t: None)
        drop = engine.schedule(20, lambda t: None)
        signature_with = engine.queue_signature()
        drop.cancel()
        assert engine.queue_signature() != signature_with
        assert len(engine.queue_signature()) == 1
        del keep
