"""Tests for repro.sim.process."""

import pytest

from repro.sim.engine import EventEngine
from repro.sim.process import RecurringProcess
from repro.util.validation import ValidationError


def make_process(engine, ticks, policy):
    return RecurringProcess(engine, action=ticks.append, interval_policy=policy)


class TestRecurringProcess:
    def test_fixed_interval_until_none(self):
        engine = EventEngine()
        ticks = []
        proc = make_process(engine, ticks, lambda t: 10 if t < 30 else None)
        proc.start(at=0)
        engine.run()
        assert ticks == [0, 10, 20, 30]
        assert proc.stopped
        assert proc.tick_count == 4

    def test_variable_interval(self):
        engine = EventEngine()
        ticks = []
        # 5-minute cadence early, 20-minute later, stop past 60
        def policy(t):
            if t >= 60:
                return None
            return 5 if t < 20 else 20

        proc = make_process(engine, ticks, policy)
        proc.start(at=0)
        engine.run()
        assert ticks == [0, 5, 10, 15, 20, 40, 60]

    def test_stop_cancels_pending(self):
        engine = EventEngine()
        ticks = []
        proc = make_process(engine, ticks, lambda t: 10)
        proc.start(at=0)
        engine.run_until(25)
        proc.stop()
        engine.run_until(100)
        assert ticks == [0, 10, 20]
        assert proc.stopped

    def test_double_start_rejected(self):
        engine = EventEngine()
        proc = make_process(engine, [], lambda t: 10)
        proc.start(at=0)
        with pytest.raises(ValidationError):
            proc.start(at=5)

    def test_non_positive_interval_rejected(self):
        engine = EventEngine()
        proc = make_process(engine, [], lambda t: 0)
        proc.start(at=0)
        with pytest.raises(ValidationError):
            engine.run()

    def test_start_later(self):
        engine = EventEngine()
        ticks = []
        proc = make_process(engine, ticks, lambda t: None)
        proc.start(at=42)
        engine.run()
        assert ticks == [42]
