"""Chaos harness: the seeded small study crawled through injected faults.

Two contracts pinned here (the acceptance gate of the fault subsystem):

1. **Zero-fault identity** — wrapping the crawl surface in the fault
   injector + resilient client with all rates zero produces a dataset
   byte-identical to an unwrapped run: same JSONL bytes, same request
   stats, no RNG consumed by the wrappers.
2. **Chaos survival** — under the default nonzero `FaultProfile`, the
   seeded small study completes end-to-end, every campaign record is
   present, and the injected failures are visible in the `RequestStats`
   counters.

Run directly via ``make chaos``.
"""

import pytest

from repro.honeypot.study import HoneypotStudy, StudyConfig
from repro.osn.faults import FaultProfile

SEED = 20140312


@pytest.fixture(scope="module")
def chaos_artifacts():
    """One seeded small study under the default chaos profile."""
    return HoneypotStudy(StudyConfig.chaos(seed=SEED)).run()


class TestZeroFaultIdentity:
    def test_wrapped_zero_fault_run_is_byte_identical(self, tmp_path):
        plain = HoneypotStudy(StudyConfig.small(seed=SEED)).run()
        wrapped_config = StudyConfig.small(seed=SEED)
        wrapped_config.fault_profile = FaultProfile.none()
        wrapped = HoneypotStudy(wrapped_config).run()

        plain_path = tmp_path / "plain.jsonl"
        wrapped_path = tmp_path / "wrapped.jsonl"
        plain.dataset.to_jsonl(plain_path)
        wrapped.dataset.to_jsonl(wrapped_path)
        assert plain_path.read_bytes() == wrapped_path.read_bytes()

        # identical request accounting and zero resilience activity: the
        # wrappers consumed no randomness and changed no behaviour
        assert wrapped.api.stats == plain.api.stats
        assert wrapped.api.stats.retries == 0
        assert wrapped.api.stats.faults_injected == 0
        assert wrapped.api.stats.backoff_minutes == 0.0


class TestChaosSurvival:
    def test_every_campaign_record_present(self, chaos_artifacts):
        dataset = chaos_artifacts.dataset
        expected = [spec.campaign_id for spec in StudyConfig.small().specs]
        assert dataset.campaign_ids() == expected
        for campaign_id in expected:
            record = dataset.campaign(campaign_id)
            assert record.monitored_days > 0 or record.inactive

    def test_dataset_complete_and_consistent(self, chaos_artifacts):
        dataset = chaos_artifacts.dataset
        assert dataset.total_likes > 0
        assert len(dataset.likers) > 0
        assert len(dataset.baseline) > 0
        # every observed liker has a record, partial or complete
        for record in dataset.campaigns.values():
            for user_id in record.liker_ids:
                assert user_id in dataset.likers

    def test_injected_failures_visible_in_stats(self, chaos_artifacts):
        stats = chaos_artifacts.api.stats
        assert stats.faults_injected > 0
        assert stats.transient_errors > 0
        assert stats.rate_limited > 0
        assert stats.retries > 0
        assert stats.backoff_minutes > 0

    def test_partial_records_marked_not_dropped(self, chaos_artifacts):
        from repro.analysis.summary import crawl_health

        health = crawl_health(chaos_artifacts.dataset)
        assert health.n_likers == len(chaos_artifacts.dataset.likers)
        assert health.n_complete + health.n_partial == health.n_likers
        for liker in chaos_artifacts.dataset.likers.values():
            if liker.crawl_status == "partial":
                assert liker.failed_fields
            else:
                assert liker.failed_fields == []

    def test_analysis_layer_tolerates_partial_records(self, chaos_artifacts):
        from repro.analysis.demographics import table2
        from repro.analysis.likes import like_count_summary
        from repro.analysis.social import provider_social_stats
        from repro.analysis.summary import table1

        dataset = chaos_artifacts.dataset
        assert len(table1(dataset)) == len(dataset.campaigns)
        assert table2(dataset)  # demographics are exact under faults
        assert provider_social_stats(dataset)
        rows = like_count_summary(dataset)
        assert rows
        # partial likers' artifact zeros are excluded from the medians
        for row in rows:
            assert row.stats.median >= 0

    def test_roundtrip_preserves_crawl_status(self, chaos_artifacts, tmp_path):
        from repro.honeypot.storage import HoneypotDataset

        path = tmp_path / "chaos.jsonl"
        chaos_artifacts.dataset.to_jsonl(path)
        loaded = HoneypotDataset.from_jsonl(path)
        original = chaos_artifacts.dataset
        assert {u: l.crawl_status for u, l in loaded.likers.items()} == {
            u: l.crawl_status for u, l in original.likers.items()
        }

    def test_chaos_is_deterministic(self):
        first = HoneypotStudy(StudyConfig.chaos(seed=99)).run()
        second = HoneypotStudy(StudyConfig.chaos(seed=99)).run()
        assert first.api.stats == second.api.stats
        assert first.dataset.total_likes == second.dataset.total_likes
        assert set(first.dataset.likers) == set(second.dataset.likers)
