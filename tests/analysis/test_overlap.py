"""Tests for repro.analysis.overlap and repro.osn.metrics."""

import pytest

from repro.analysis.overlap import (
    overlap_summary,
    render_overlap,
    shared_liker_counts,
    top_overlaps,
)
from repro.osn.metrics import cohort_metrics, graph_metrics
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender
from repro.util.validation import ValidationError


class TestOverlapSummary:
    def test_accounting_identity(self, small_dataset):
        summary = overlap_summary(small_dataset)
        # sum over multiplicity buckets reproduces both totals
        assert sum(summary.multiplicity.values()) == summary.unique_likers
        assert (
            sum(n * count for n, count in summary.multiplicity.items())
            == summary.total_likes
        )

    def test_repeat_likers_exist(self, small_dataset):
        """SF reuse and the AL/MS operator guarantee multi-campaign likers."""
        summary = overlap_summary(small_dataset)
        assert summary.repeat_likers > 0
        assert 0 < summary.repeat_fraction < 0.5

    def test_shared_counts_match_alms(self, small_dataset):
        counts = shared_liker_counts(small_dataset)
        al_ms = counts.get(("AL-USA", "MS-USA"), 0)
        # the ALMS group dominates the overlap table
        assert al_ms > 0
        top = top_overlaps(small_dataset, limit=1)
        assert top[0][2] >= al_ms

    def test_no_overlap_with_inactive(self, small_dataset):
        # Inactive (zero-like) campaigns share nothing — but their pairs
        # stay in the matrix as explicit zeros instead of vanishing.
        counts = shared_liker_counts(small_dataset)
        for (a, b), n in counts.items():
            if "BL-ALL" in (a, b) or "MS-ALL" in (a, b):
                assert n == 0

    def test_matrix_is_complete_over_all_pairs(self, small_dataset):
        # Regression: zero pairs used to be dropped, which silently removed
        # zero-liker campaigns from every pairwise consumer.
        counts = shared_liker_counts(small_dataset)
        campaign_ids = small_dataset.campaign_ids()
        n = len(campaign_ids)
        assert len(counts) == n * (n - 1) // 2
        named = {c for pair in counts for c in pair}
        assert named == set(campaign_ids)
        assert "BL-ALL" in named  # the zero-liker campaign is present

    def test_top_overlaps_exclude_zero_pairs(self, small_dataset):
        assert all(n > 0 for _, _, n in top_overlaps(small_dataset, limit=100))

    def test_render(self, small_dataset):
        text = render_overlap(small_dataset)
        assert "Liker multiplicity" in text
        assert "Shared likers" in text


class TestGraphMetrics:
    def make_net(self):
        net = SocialNetwork()
        users = [
            net.create_user(gender=Gender.MALE, age=20, country="US",
                            cohort="farm:T").user_id
            for _ in range(6)
        ]
        # triangle among first three; chain between 4 and 5; 6 isolated
        net.add_friendship(users[0], users[1])
        net.add_friendship(users[1], users[2])
        net.add_friendship(users[0], users[2])
        net.add_friendship(users[3], users[4])
        return net, users

    def test_counts(self):
        net, users = self.make_net()
        metrics = graph_metrics(net, users)
        assert metrics.n_users == 6
        assert metrics.n_edges == 4
        assert metrics.largest_component == 3
        assert metrics.n_components == 2
        assert metrics.isolated_users == 1
        assert metrics.max_degree == 2

    def test_clustering_of_triangle(self):
        net, users = self.make_net()
        metrics = graph_metrics(net, users)
        assert metrics.clustering_coefficient == pytest.approx(1.0)

    def test_largest_component_fraction(self):
        net, users = self.make_net()
        metrics = graph_metrics(net, users)
        assert metrics.largest_component_fraction == pytest.approx(0.5)

    def test_empty_rejected(self):
        net, _ = self.make_net()
        with pytest.raises(ValidationError):
            graph_metrics(net, [])

    def test_cohort_metrics(self):
        net, users = self.make_net()
        metrics = cohort_metrics(net, "farm:T")
        assert metrics.n_users == 6

    def test_unknown_cohort_rejected(self):
        net, _ = self.make_net()
        with pytest.raises(ValidationError):
            cohort_metrics(net, "farm:none")

    def test_boostlikes_clustered_on_study(self, small_artifacts):
        """The paper's structural claim, as numbers: BL >> SF in clustering."""
        net = small_artifacts.network
        bl = cohort_metrics(net, "farm:BoostLikes.com")
        sf = cohort_metrics(net, "farm:SocialFormula.com")
        assert bl.mean_degree > 3 * max(sf.mean_degree, 0.01)
        assert bl.largest_component_fraction > 0.5
        assert sf.largest_component_fraction < 0.3
