"""Tests for repro.analysis.export."""

import csv
from pathlib import Path

import pytest

from repro.analysis.export import (
    export_all,
    export_figure2,
    export_figure4,
    export_figure5,
    export_table1,
    export_table2,
)


def read_csv(path: Path):
    with Path(path).open() as handle:
        return list(csv.reader(handle))


class TestIndividualExports:
    def test_table1_rows(self, small_dataset, tmp_path):
        path = export_table1(small_dataset, tmp_path / "t1.csv")
        rows = read_csv(path)
        assert rows[0][0] == "campaign_id"
        assert len(rows) == 14  # header + 13 campaigns

    def test_table2_header_covers_brackets(self, small_dataset, tmp_path):
        path = export_table2(small_dataset, tmp_path / "t2.csv")
        header = read_csv(path)[0]
        assert "13-17" in header and "55+" in header and "kl_bits" in header

    def test_figure2_tidy_form(self, small_dataset, tmp_path):
        path = export_figure2(small_dataset, tmp_path / "f2.csv")
        rows = read_csv(path)
        assert rows[0] == ["campaign_id", "day", "cumulative_likes"]
        campaigns = {row[0] for row in rows[1:]}
        assert campaigns == set(small_dataset.campaign_ids())

    def test_figure4_includes_baseline(self, small_dataset, tmp_path):
        path = export_figure4(small_dataset, tmp_path / "f4.csv")
        rows = read_csv(path)
        populations = {row[0] for row in rows[1:]}
        assert "baseline" in populations
        baseline_rows = [row for row in rows[1:] if row[0] == "baseline"]
        assert len(baseline_rows) == len(small_dataset.baseline)

    def test_figure5_square_long_form(self, small_dataset, tmp_path):
        page_path, user_path = export_figure5(
            small_dataset, tmp_path / "p.csv", tmp_path / "u.csv"
        )
        for path in (page_path, user_path):
            rows = read_csv(path)
            assert len(rows) == 1 + 13 * 13


class TestExportAll:
    def test_all_files_written(self, small_dataset, tmp_path):
        outputs = export_all(small_dataset, tmp_path / "export")
        assert len(outputs) == 9
        for path in outputs.values():
            assert Path(path).exists()
            assert Path(path).stat().st_size > 0

    def test_creates_directory(self, small_dataset, tmp_path):
        target = tmp_path / "a" / "b"
        export_all(small_dataset, target)
        assert target.is_dir()

    def test_numeric_cells_parse(self, small_dataset, tmp_path):
        outputs = export_all(small_dataset, tmp_path / "export")
        rows = read_csv(outputs["figure5_page"])
        for _, _, value in rows[1:]:
            assert 0.0 <= float(value) <= 100.0
