"""Tests for repro.analysis.economics and repro.honeypot.dashboard."""

import pytest

from repro.analysis.economics import (
    CampaignEconomics,
    campaign_economics,
    render_economics,
)
from repro.honeypot.dashboard import build_dashboard, render_dashboard


class TestCampaignEconomics:
    def test_cost_per_like(self):
        econ = CampaignEconomics(
            campaign_id="X", provider="P", total_cost=90.0,
            likes=450, removed_likes=50, inactive=False,
        )
        assert econ.cost_per_like == pytest.approx(0.2)
        assert econ.retained_likes == 400
        assert econ.cost_per_retained_like == pytest.approx(0.225)

    def test_empty_campaign_none(self):
        econ = CampaignEconomics(
            campaign_id="X", provider="P", total_cost=70.0,
            likes=0, removed_likes=0, inactive=True,
        )
        assert econ.cost_per_like is None
        assert econ.cost_per_retained_like is None

    def test_rows_cover_all_campaigns(self, small_dataset):
        rows = campaign_economics(small_dataset)
        assert len(rows) == 13

    def test_inactive_orders_burned_money(self, small_dataset):
        rows = {r.campaign_id: r for r in campaign_economics(small_dataset)}
        # BL-ALL and MS-ALL were paid ($70 / $20) but delivered nothing.
        assert rows["BL-ALL"].total_cost == 70.0
        assert rows["BL-ALL"].likes == 0
        assert rows["MS-ALL"].total_cost == 20.0

    def test_ad_spend_bounded_by_budget(self, small_dataset):
        rows = {r.campaign_id: r for r in campaign_economics(small_dataset)}
        for campaign_id in ("FB-USA", "FB-IND", "FB-EGY"):
            # $6/day x 15 days at scale 0.1 = $9 cap
            assert 0 < rows[campaign_id].total_cost <= 9.01, campaign_id

    def test_farm_prices_match_table1(self, small_dataset):
        rows = {r.campaign_id: r for r in campaign_economics(small_dataset)}
        assert rows["SF-ALL"].total_cost == 14.99
        assert rows["BL-USA"].total_cost == 190.00

    def test_cheap_farm_cheapest_per_like(self, small_dataset):
        rows = {r.campaign_id: r for r in campaign_economics(small_dataset)}
        # SocialFormula worldwide is the cheapest source of likes, as in the
        # paper's price list ($14.99/1000).
        sf = rows["SF-ALL"].cost_per_like
        bl = rows["BL-USA"].cost_per_like
        assert sf < bl

    def test_render(self, small_dataset):
        text = render_economics(small_dataset)
        assert "$/retained like" in text
        assert "BL-ALL" in text


class TestDashboard:
    def test_totals_match_record(self, small_dataset):
        record = small_dataset.campaign("SF-ALL")
        dashboard = build_dashboard(record)
        assert dashboard.total_likes == record.total_likes
        assert dashboard.daily[-1].cumulative == record.total_likes

    def test_burst_campaign_few_active_days(self, small_dataset):
        dashboard = build_dashboard(small_dataset.campaign("AL-USA"))
        assert dashboard.days_active <= 3
        assert dashboard.peak_day_likes > dashboard.total_likes * 0.4

    def test_trickle_campaign_many_active_days(self, small_dataset):
        dashboard = build_dashboard(small_dataset.campaign("BL-USA"))
        assert dashboard.days_active >= 10
        assert dashboard.delivered_by_day >= 12

    def test_empty_campaign(self, small_dataset):
        dashboard = build_dashboard(small_dataset.campaign("BL-ALL"))
        assert dashboard.total_likes == 0
        assert dashboard.days_active == 0
        assert dashboard.mean_daily_likes == 0.0
        assert dashboard.delivered_by_day == 0

    def test_mean_from_observed_not_declared(self):
        # Regression: a gap-ridden record whose platform-declared total
        # exceeds what the monitor observed.  The mean must come from the
        # observed cumulative series, not the declared count.
        from repro.honeypot.storage import CampaignRecord, LikeObservation
        from repro.util.timeutil import DAY

        record = CampaignRecord(
            campaign_id="GAP", provider="test", kind="farm",
            location_label="ALL", budget_label="-", duration_days=15.0,
            monitored_days=10.0, page_id=1,
            total_likes=100,  # platform-declared; 94 observations lost to gaps
            observations=[
                LikeObservation(observed_at=0, user_id=1),
                LikeObservation(observed_at=0, user_id=2),
                LikeObservation(observed_at=DAY, user_id=3),
                LikeObservation(observed_at=DAY, user_id=4),
                LikeObservation(observed_at=2 * DAY, user_id=5),
                LikeObservation(observed_at=2 * DAY, user_id=6),
            ],
        )
        dashboard = build_dashboard(record)
        assert dashboard.mean_daily_likes == 2.0  # 6 observed / 3 active days

    def test_daily_cumulative_monotone(self, small_dataset):
        for campaign_id in small_dataset.campaign_ids():
            dashboard = build_dashboard(small_dataset.campaign(campaign_id))
            values = [d.cumulative for d in dashboard.daily]
            assert values == sorted(values)

    def test_render(self, small_dataset):
        dashboard = build_dashboard(small_dataset.campaign("FB-EGY"))
        text = render_dashboard(dashboard)
        assert "FB-EGY" in text
        assert "Cumulative" in text
