"""Tests for repro.analysis.demographics (on the shared small study)."""

import pytest

from repro.analysis.demographics import (
    age_distribution,
    country_distribution,
    gender_split,
    global_age_pct,
    table2,
)
from repro.osn.profile import AGE_BRACKETS


class TestCountryDistribution:
    def test_fractions_sum_to_one(self, small_dataset):
        buckets = country_distribution(small_dataset, "FB-EGY")
        assert sum(buckets.fractions.values()) == pytest.approx(1.0)

    def test_targeted_campaign_dominated_by_target(self, small_dataset):
        for campaign_id, country in (("FB-IND", "IN"), ("FB-EGY", "EG")):
            top, share = country_distribution(small_dataset, campaign_id).top_country()
            assert top == country
            assert share > 0.85

    def test_worldwide_goes_to_india(self, small_dataset):
        top, share = country_distribution(small_dataset, "FB-ALL").top_country()
        assert top == "IN"
        assert share > 0.8

    def test_socialformula_turkey_despite_usa_order(self, small_dataset):
        top, _ = country_distribution(small_dataset, "SF-USA").top_country()
        assert top == "TR"

    def test_other_bucket_catches_unlisted(self, small_dataset):
        buckets = country_distribution(small_dataset, "AL-ALL")
        assert "Other" in buckets.fractions

    def test_inactive_campaign_empty(self, small_dataset):
        buckets = country_distribution(small_dataset, "BL-ALL")
        assert all(v == 0.0 for v in buckets.fractions.values())


class TestGenderAndAge:
    def test_gender_split_sums_to_100(self, small_dataset):
        female, male = gender_split(small_dataset, "SF-ALL")
        assert female + male == pytest.approx(100.0)

    def test_india_male_skew(self, small_dataset):
        female, male = gender_split(small_dataset, "FB-IND")
        assert male > 80  # paper: 93

    def test_empty_campaign_zero(self, small_dataset):
        assert gender_split(small_dataset, "BL-ALL") == (0.0, 0.0)

    def test_age_distribution_complete(self, small_dataset):
        ages = age_distribution(small_dataset, "AL-USA")
        assert list(ages) == list(AGE_BRACKETS)
        assert sum(ages.values()) == pytest.approx(100.0)

    def test_fb_campaigns_skew_young(self, small_dataset):
        ages = age_distribution(small_dataset, "FB-IND")
        assert ages["13-17"] + ages["18-24"] > 80


class TestTable2:
    def test_rows_skip_inactive_and_append_global(self, small_dataset):
        rows = table2(small_dataset)
        ids = [row.campaign_id for row in rows]
        assert "BL-ALL" not in ids
        assert "MS-ALL" not in ids
        assert ids[-1] == "Facebook"
        assert len(ids) == 12  # 11 active + global row

    def test_kl_ordering_matches_paper(self, small_dataset):
        """SocialFormula mimics global demographics; FB-IND diverges hard."""
        rows = {row.campaign_id: row for row in table2(small_dataset)}
        assert rows["SF-ALL"].kl_divergence < rows["FB-IND"].kl_divergence

    def test_global_row_near_configured_distribution(self, small_dataset):
        rows = {row.campaign_id: row for row in table2(small_dataset)}
        facebook = rows["Facebook"]
        assert 40 <= facebook.female_pct <= 52  # configured 46
        assert facebook.kl_divergence == 0.0

    def test_global_age_pct_in_bracket_order(self, small_dataset):
        pct = global_age_pct(small_dataset)
        assert list(pct) == list(AGE_BRACKETS)
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_age_pcts_sum_to_100(self, small_dataset):
        for row in table2(small_dataset):
            assert sum(row.age_pct.values()) == pytest.approx(100.0, abs=0.1)
