"""Tests for repro.analysis.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    cdf_at,
    empirical_cdf,
    gini_coefficient,
    jaccard,
    kl_divergence_bits,
    max_count_in_window,
    percentile,
    summary_stats,
)
from repro.util.validation import ValidationError


class TestKlDivergence:
    def test_identical_distributions_zero(self):
        p = {"a": 0.5, "b": 0.5}
        assert kl_divergence_bits(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_known_value(self):
        # D({0.75, 0.25} || {0.5, 0.5}) = 0.75*log2(1.5) + 0.25*log2(0.5)
        expected = 0.75 * math.log2(1.5) + 0.25 * math.log2(0.5)
        value = kl_divergence_bits({"a": 0.75, "b": 0.25}, {"a": 0.5, "b": 0.5})
        assert value == pytest.approx(expected, abs=1e-4)

    def test_asymmetric(self):
        p = {"a": 0.9, "b": 0.1}
        q = {"a": 0.5, "b": 0.5}
        assert kl_divergence_bits(p, q) != pytest.approx(kl_divergence_bits(q, p))

    def test_zero_mass_smoothed(self):
        value = kl_divergence_bits({"a": 1.0, "b": 0.0}, {"a": 0.5, "b": 0.5})
        assert math.isfinite(value)
        assert value > 0

    def test_missing_keys_treated_as_zero(self):
        value = kl_divergence_bits({"a": 1.0}, {"a": 0.5, "b": 0.5})
        assert math.isfinite(value)

    def test_paper_magnitude_fb_ind(self):
        """The FB-IND row of Table 2 should land near the published 1.12 bits."""
        fb_ind = {"13-17": 52.7, "18-24": 43.5, "25-34": 2.3,
                  "35-44": 0.7, "45-54": 0.5, "55+": 0.3}
        facebook = {"13-17": 14.9, "18-24": 32.3, "25-34": 26.6,
                    "35-44": 13.2, "45-54": 7.2, "55+": 5.9}
        value = kl_divergence_bits(fb_ind, facebook)
        assert 0.8 <= value <= 1.3

    @given(st.dictionaries(st.sampled_from("abcdef"),
                           st.floats(min_value=0.01, max_value=1.0),
                           min_size=2, max_size=6))
    def test_property_non_negative(self, p):
        q = {k: 1.0 for k in p}
        assert kl_divergence_bits(p, q) >= -1e-9


class TestJaccard:
    def test_disjoint(self):
        assert jaccard({1, 2}, {3, 4}) == 0.0

    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_side_empty(self):
        # Regression pin for zero-liker campaigns: an empty-side pair is a
        # well-defined 0.0, never an error or a dropped matrix entry.
        assert jaccard(set(), {1, 2}) == 0.0
        assert jaccard({1, 2}, set()) == 0.0

    @given(st.sets(st.integers(0, 50)), st.sets(st.integers(0, 50)))
    def test_property_bounded_and_symmetric(self, a, b):
        value = jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard(b, a)


class TestEmpiricalCdf:
    def test_basic(self):
        xs, ys = empirical_cdf([3, 1, 2])
        assert xs == [1, 2, 3]
        assert ys == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        assert empirical_cdf([]) == ([], [])

    def test_cdf_at(self):
        values = [10, 20, 30, 40]
        assert cdf_at(values, 25) == 0.5
        assert cdf_at(values, 5) == 0.0
        assert cdf_at(values, 100) == 1.0
        assert cdf_at([], 1) == 0.0


class TestSummaryStats:
    def test_basic(self):
        stats = summary_stats([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.median == 3.0

    def test_empty(self):
        stats = summary_stats([])
        assert stats.count == 0
        assert stats.mean == 0.0


class TestMaxCountInWindow:
    def test_all_in_one_window(self):
        assert max_count_in_window([0, 10, 20], window=60) == 3

    def test_spread(self):
        assert max_count_in_window([0, 100, 200], window=60) == 1

    def test_sliding(self):
        # Half-open windows: [0, 100) holds 0 and 50 only; 100 starts the
        # next window.
        assert max_count_in_window([0, 50, 100, 150], window=100) == 2

    def test_unsorted_input(self):
        assert max_count_in_window([200, 0, 100, 50], window=100) == 2

    def test_boundary_exactly_window_apart(self):
        # Two events exactly `window` apart never share a half-open window.
        assert max_count_in_window([0, 100], window=100) == 1
        assert max_count_in_window([0, 99], window=100) == 2

    def test_daily_series_in_daily_window(self):
        # A strictly daily trickle counts one event per one-day window —
        # the inclusive bug counted two at every boundary.
        day = 1440
        assert max_count_in_window([0, day, 2 * day, 3 * day], window=day) == 1

    def test_empty(self):
        assert max_count_in_window([], window=60) == 0

    def test_invalid_window(self):
        with pytest.raises(ValidationError):
            max_count_in_window([1], window=0)


class TestPercentileAndGini:
    def test_percentile(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValidationError):
            percentile([], 50)

    def test_gini_equal_distribution(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated(self):
        assert gini_coefficient([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_gini_all_zero(self):
        assert gini_coefficient([0, 0]) == 0.0

    def test_gini_negative_rejected(self):
        with pytest.raises(ValidationError):
            gini_coefficient([-1, 2])
