"""Tests for repro.analysis.likes and repro.analysis.similarity."""

import pytest

from repro.analysis.likes import (
    baseline_like_counts,
    campaign_like_counts,
    like_count_cdfs,
    like_count_summary,
)
from repro.analysis.similarity import (
    campaign_liker_sets,
    campaign_page_sets,
    jaccard_matrices,
)


class TestLikeCounts:
    def test_baseline_near_paper_median(self, small_dataset):
        import numpy as np
        counts = baseline_like_counts(small_dataset)
        assert 20 <= float(np.median(counts)) <= 50  # paper: 34

    def test_farm_likers_heavy(self, small_dataset):
        import numpy as np
        for campaign_id in ("SF-ALL", "AL-USA"):
            counts = campaign_like_counts(small_dataset, campaign_id)
            assert float(np.median(counts)) > 800

    def test_boostlikes_exception(self, small_dataset):
        import numpy as np
        counts = campaign_like_counts(small_dataset, "BL-USA")
        assert float(np.median(counts)) < 250  # paper: 63

    def test_summary_ratios(self, small_dataset):
        rows = {r.campaign_id: r for r in like_count_summary(small_dataset)}
        assert rows["SF-ALL"].median_ratio > 10
        assert rows["BL-USA"].median_ratio < 10
        assert "BL-ALL" not in rows  # inactive

    def test_cdfs_cover_campaigns_and_baseline(self, small_dataset):
        curves = like_count_cdfs(small_dataset)
        assert "Facebook" in curves
        assert "SF-ALL" in curves
        xs, ys = curves["SF-ALL"]
        assert ys[-1] == pytest.approx(1.0)
        assert xs == sorted(xs)


class TestSimilarity:
    def test_matrix_shape_and_diagonal(self, small_dataset):
        matrices = jaccard_matrices(small_dataset)
        n = len(matrices.campaign_ids)
        assert n == 13
        for i in range(n):
            cid = matrices.campaign_ids[i]
            expected = 100.0 if small_dataset.campaign(cid).total_likes else 0.0
            assert matrices.user_similarity[i][i] == pytest.approx(expected)

    def test_symmetry(self, small_dataset):
        matrices = jaccard_matrices(small_dataset)
        n = len(matrices.campaign_ids)
        for i in range(n):
            for j in range(n):
                assert matrices.page_similarity[i][j] == pytest.approx(
                    matrices.page_similarity[j][i]
                )

    def test_sf_campaigns_share_users(self, small_dataset):
        matrices = jaccard_matrices(small_dataset)
        assert matrices.user_value("SF-ALL", "SF-USA") > 0

    def test_al_ms_share_users(self, small_dataset):
        matrices = jaccard_matrices(small_dataset)
        assert matrices.user_value("AL-USA", "MS-USA") > 5

    def test_fb_block_page_similarity(self, small_dataset):
        """FB-IND / FB-EGY / FB-ALL cluster in page-set similarity."""
        matrices = jaccard_matrices(small_dataset)
        within = min(
            matrices.page_value("FB-IND", "FB-EGY"),
            matrices.page_value("FB-IND", "FB-ALL"),
            matrices.page_value("FB-EGY", "FB-ALL"),
        )
        across = max(
            matrices.page_value("FB-IND", "AL-USA"),
            matrices.page_value("FB-EGY", "MS-USA"),
        )
        assert within > across

    def test_fb_farm_overlap_noticeable(self, small_dataset):
        """The paper's 'noticeable overlap' between ads and farm page sets."""
        matrices = jaccard_matrices(small_dataset)
        assert matrices.page_value("FB-IND", "SF-ALL") > 20

    def test_inactive_campaigns_zero_rows(self, small_dataset):
        matrices = jaccard_matrices(small_dataset)
        assert matrices.page_value("BL-ALL", "FB-IND") == 0.0
        assert matrices.user_value("MS-ALL", "MS-USA") == 0.0

    def test_page_sets_exclude_nothing(self, small_dataset):
        page_sets = campaign_page_sets(small_dataset)
        liker_sets = campaign_liker_sets(small_dataset)
        for campaign_id in small_dataset.campaign_ids():
            record = small_dataset.campaign(campaign_id)
            assert len(liker_sets[campaign_id]) == len(set(record.liker_ids))
            if record.total_likes:
                assert len(page_sets[campaign_id]) > 0
