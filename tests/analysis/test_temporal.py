"""Tests for repro.analysis.temporal (on the shared small study)."""

import pytest

from repro.analysis.temporal import (
    STRATEGY_BURST,
    STRATEGY_EMPTY,
    STRATEGY_TRICKLE,
    TemporalProfile,
    classify_strategy,
    cumulative_series,
    temporal_profile,
)
from repro.honeypot.storage import CampaignRecord, HoneypotDataset, LikeObservation
from repro.util.timeutil import DAY, HOUR
from repro.util.validation import ValidationError


def _dataset_with_observations(times):
    dataset = HoneypotDataset()
    dataset.campaigns["X"] = CampaignRecord(
        campaign_id="X", provider="test", kind="farm",
        location_label="ALL", budget_label="-", duration_days=15.0,
        monitored_days=30.0, page_id=1, total_likes=len(times),
        observations=[
            LikeObservation(observed_at=t, user_id=i) for i, t in enumerate(times)
        ],
    )
    return dataset


class TestCumulativeSeries:
    def test_monotone_nondecreasing(self, small_dataset):
        for campaign_id in small_dataset.campaign_ids():
            _, counts = cumulative_series(small_dataset, campaign_id)
            assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_x_axis_in_days(self, small_dataset):
        days, _ = cumulative_series(small_dataset, "FB-IND", horizon_days=15.0)
        assert days[0] == 0.0
        assert days[-1] == pytest.approx(15.0)

    def test_final_count_close_to_total(self, small_dataset):
        record = small_dataset.campaign("SF-ALL")
        _, counts = cumulative_series(small_dataset, "SF-ALL", horizon_days=15.0)
        assert counts[-1] == record.total_likes  # SF delivers within 3 days

    def test_resolution_controls_length(self, small_dataset):
        from repro.util.timeutil import HOUR
        fine, _ = cumulative_series(small_dataset, "FB-IND", resolution=2 * HOUR)
        coarse, _ = cumulative_series(small_dataset, "FB-IND", resolution=24 * HOUR)
        assert len(fine) > len(coarse)

    def test_empty_campaign_flat_zero(self, small_dataset):
        _, counts = cumulative_series(small_dataset, "BL-ALL")
        assert set(counts) == {0}

    def test_invalid_resolution(self, small_dataset):
        with pytest.raises(ValidationError):
            cumulative_series(small_dataset, "FB-IND", resolution=0)


class TestTemporalProfile:
    def test_burst_farms_bursty(self, small_dataset):
        for campaign_id in ("SF-ALL", "AL-USA", "MS-USA"):
            profile = temporal_profile(small_dataset, campaign_id)
            assert profile.max_2h_fraction > 0.25, campaign_id

    def test_trickle_campaigns_not_bursty(self, small_dataset):
        for campaign_id in ("FB-IND", "FB-EGY", "BL-USA"):
            profile = temporal_profile(small_dataset, campaign_id)
            assert profile.max_2h_fraction < 0.25, campaign_id

    def test_empty_profile(self, small_dataset):
        profile = temporal_profile(small_dataset, "BL-ALL")
        assert profile.total_likes == 0
        assert profile.span_days == 0.0

    def test_burst_farm_short_span(self, small_dataset):
        profile = temporal_profile(small_dataset, "AL-USA")
        assert profile.span_days <= 4

    def test_trickle_long_span(self, small_dataset):
        profile = temporal_profile(small_dataset, "BL-USA")
        assert profile.span_days >= 10

    def test_days_to_half_measured_from_first_like(self):
        # Regression: a burst starting on day 20 reaches its half-point
        # within the hour.  The old code measured from the study epoch and
        # reported ~20 days for this campaign.
        start = 20 * DAY
        times = [start + i * (HOUR // 10) for i in range(10)]
        profile = temporal_profile(_dataset_with_observations(times), "X")
        assert profile.days_to_half < 1.0
        assert profile.days_to_half == pytest.approx((times[4] - start) / DAY)

    def test_days_to_half_epoch_start_unchanged(self):
        # A campaign whose first like lands at t=0 is unaffected by the fix.
        times = [0, DAY, 2 * DAY, 3 * DAY]
        profile = temporal_profile(_dataset_with_observations(times), "X")
        assert profile.days_to_half == pytest.approx(1.0)


class TestClassifyStrategy:
    def test_paper_split(self, small_dataset):
        expected = {
            "SF-ALL": STRATEGY_BURST, "SF-USA": STRATEGY_BURST,
            "AL-ALL": STRATEGY_BURST, "AL-USA": STRATEGY_BURST,
            "MS-USA": STRATEGY_BURST,
            "BL-USA": STRATEGY_TRICKLE,
            "FB-IND": STRATEGY_TRICKLE, "FB-EGY": STRATEGY_TRICKLE,
            "BL-ALL": STRATEGY_EMPTY, "MS-ALL": STRATEGY_EMPTY,
        }
        for campaign_id, label in expected.items():
            profile = temporal_profile(small_dataset, campaign_id)
            assert classify_strategy(profile) == label, campaign_id

    def test_tiny_campaign_never_burst(self):
        profile = TemporalProfile(
            campaign_id="X", total_likes=3, span_days=0.1,
            max_2h_likes=3, max_2h_fraction=1.0, days_to_half=0.05,
        )
        assert classify_strategy(profile) == STRATEGY_TRICKLE

    def test_threshold_validation(self):
        profile = TemporalProfile(
            campaign_id="X", total_likes=100, span_days=1,
            max_2h_likes=60, max_2h_fraction=0.6, days_to_half=0.5,
        )
        with pytest.raises(ValidationError):
            classify_strategy(profile, burst_fraction_threshold=1.5)
