"""Tests for repro.analysis.social (on the shared small study)."""

import pytest

from repro.analysis.social import (
    ALMS_GROUP,
    group_graph_stats,
    group_likers_by_provider,
    observed_direct_edges,
    observed_mutual_friend_pairs,
    provider_membership,
    provider_social_stats,
)
from repro.honeypot.storage import HoneypotDataset, CampaignRecord, LikeObservation, LikerRecord


def mini_dataset():
    """A hand-built dataset with known social structure."""
    dataset = HoneypotDataset()

    def campaign(cid, provider, likers):
        dataset.campaigns[cid] = CampaignRecord(
            campaign_id=cid, provider=provider, kind="like_farm",
            location_label="USA", budget_label="$", duration_days=3,
            monitored_days=10, page_id=hash(cid) % 1000, total_likes=len(likers),
            observations=[LikeObservation(observed_at=i, user_id=u)
                          for i, u in enumerate(likers)],
        )

    campaign("AL-X", "AuthenticLikes.com", [1, 2, 3])
    campaign("MS-X", "MammothSocials.com", [3, 4])
    campaign("SF-X", "SocialFormula.com", [5, 6])

    def liker(uid, public, friends, declared=None):
        dataset.likers[uid] = LikerRecord(
            user_id=uid, gender="M", age_bracket="18-24", country="US",
            friend_list_public=public,
            declared_friend_count=declared if public else None,
            visible_friend_ids=friends if public else [],
            campaign_ids=[c for c in dataset.campaigns
                          if uid in dataset.campaigns[c].liker_ids],
        )

    # 1-2 direct friends (both public); 5 and 6 share hidden hub 99
    liker(1, True, [2, 100], declared=50)
    liker(2, True, [1], declared=30)
    liker(3, False, [])
    liker(4, True, [], declared=10)
    liker(5, True, [99], declared=20)
    liker(6, True, [99], declared=25)
    return dataset


class TestGrouping:
    def test_alms_split(self):
        groups = group_likers_by_provider(mini_dataset())
        assert {l.user_id for l in groups[ALMS_GROUP]} == {3}
        assert {l.user_id for l in groups["AuthenticLikes.com"]} == {1, 2}
        assert {l.user_id for l in groups["MammothSocials.com"]} == {4}

    def test_membership_map(self):
        membership = provider_membership(mini_dataset())
        assert membership[3] == ALMS_GROUP
        assert membership[5] == "SocialFormula.com"

    def test_small_study_grouping_covers_all_likers(self, small_dataset):
        groups = group_likers_by_provider(small_dataset)
        total = sum(len(likers) for likers in groups.values())
        assert total == len(small_dataset.likers)


class TestObservedEdges:
    def test_direct_edge_requires_one_public_list(self):
        edges = observed_direct_edges(mini_dataset())
        assert (1, 2) in edges
        assert len(edges) == 1  # 5-6 are not direct friends

    def test_mutual_pairs_require_shared_listed_friend(self):
        pairs = observed_mutual_friend_pairs(mini_dataset())
        assert (5, 6) in pairs
        assert (1, 2) not in pairs  # no shared third friend in lists

    def test_non_liker_friends_ignored_for_direct(self):
        edges = observed_direct_edges(mini_dataset())
        assert all(a in mini_dataset().likers for a, b in edges)


class TestProviderStats:
    def test_mini_rows(self):
        rows = {r.provider: r for r in provider_social_stats(mini_dataset())}
        al = rows["AuthenticLikes.com"]
        assert al.n_likers == 2
        assert al.n_public_friend_lists == 2
        assert al.friend_count.median == 40.0
        assert al.direct_friendships == 1
        sf = rows["SocialFormula.com"]
        assert sf.two_hop_relations == 1

    def test_small_study_boostlikes_density(self, small_dataset):
        rows = {r.provider: r for r in provider_social_stats(small_dataset)}
        bl = rows["BoostLikes.com"]
        sf = rows["SocialFormula.com"]
        # BoostLikes: dense direct graph; SocialFormula: sparse pairs
        assert bl.direct_friendships > sf.direct_friendships
        # BoostLikes friend counts far above SocialFormula's
        assert bl.friend_count.median > 2 * sf.friend_count.median

    def test_small_study_public_list_rates(self, small_dataset):
        rows = {r.provider: r for r in provider_social_stats(small_dataset)}
        # paper: SF ~58% public, Facebook ~18%, BL ~26%
        assert rows["SocialFormula.com"].public_fraction > 0.4
        assert rows["Facebook.com"].public_fraction < 0.35

    def test_alms_group_present(self, small_dataset):
        rows = {r.provider: r for r in provider_social_stats(small_dataset)}
        assert ALMS_GROUP in rows
        assert rows[ALMS_GROUP].n_likers > 0

    def test_two_hop_exceeds_direct_for_burst_farms(self, small_dataset):
        rows = {r.provider: r for r in provider_social_stats(small_dataset)}
        for provider in ("SocialFormula.com", "AuthenticLikes.com"):
            assert rows[provider].two_hop_relations > rows[provider].direct_friendships


class TestGraphStats:
    def test_direct_vs_mutual_edge_counts(self, small_dataset):
        direct = {r.provider: r for r in group_graph_stats(small_dataset)}
        mutual = {r.provider: r
                  for r in group_graph_stats(small_dataset, include_mutual=True)}
        for provider, row in direct.items():
            assert mutual[provider].n_edges >= row.n_edges

    def test_boostlikes_one_big_component(self, small_dataset):
        # Only ~26% of BL likers expose friend lists, so the observed direct
        # graph fragments; still, one dominant component should emerge and
        # the mutual-friend view should consolidate it further.
        direct = {r.provider: r for r in group_graph_stats(small_dataset)}
        bl = direct["BoostLikes.com"]
        assert bl.largest_component >= 0.3 * bl.n_nodes_with_edges
        mutual = {r.provider: r
                  for r in group_graph_stats(small_dataset, include_mutual=True)}
        assert mutual["BoostLikes.com"].largest_component >= bl.largest_component

    def test_socialformula_pairs_and_triplets(self, small_dataset):
        rows = {r.provider: r for r in group_graph_stats(small_dataset)}
        sf = rows["SocialFormula.com"]
        assert sf.n_pair_components + sf.n_triplet_components >= 1
        assert sf.largest_component <= 5  # no big component on direct edges

    def test_connected_fraction_bounded(self, small_dataset):
        for row in group_graph_stats(small_dataset, include_mutual=True):
            assert 0.0 <= row.connected_fraction <= 1.0
