"""Tests for repro.analysis.summary and repro.analysis.report."""

from repro.analysis.report import (
    full_report,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_strategy_classification,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.summary import (
    paper_comparison,
    table1,
    terminated_by_provider,
    total_likes_by_kind,
)
from repro.core import paperdata


class TestTable1:
    def test_thirteen_rows_in_order(self, small_dataset):
        rows = table1(small_dataset)
        assert len(rows) == 13
        assert rows[0].campaign_id == "FB-USA"
        assert rows[-1].campaign_id == "MS-USA"

    def test_inactive_flagged(self, small_dataset):
        rows = {r.campaign_id: r for r in table1(small_dataset)}
        assert rows["BL-ALL"].inactive
        assert not rows["SF-ALL"].inactive

    def test_totals_by_kind(self, small_dataset):
        totals = total_likes_by_kind(small_dataset)
        assert set(totals) == {"facebook_ads", "like_farm"}
        # farms deliver ~2.5x what the ads do (paper: 4453 vs 1769)
        assert totals["like_farm"] > totals["facebook_ads"]

    def test_terminated_by_provider(self, small_dataset):
        terminated = terminated_by_provider(small_dataset)
        burst = sum(terminated.get(p, 0) for p in paperdata.BURST_PROVIDERS)
        assert burst >= terminated.get("BoostLikes.com", 0)

    def test_paper_comparison_rows(self, small_dataset):
        rows = paper_comparison(small_dataset, paperdata.TABLE1_LIKES)
        assert len(rows) == 13
        by_id = {r["campaign_id"]: r for r in rows}
        assert by_id["SF-ALL"]["paper"] == 984
        assert by_id["BL-ALL"]["paper"] is None


class TestReportRendering:
    def test_all_sections_render(self, small_dataset):
        report = full_report(small_dataset)
        for token in (
            "Table 1", "Figure 1", "Table 2", "Figure 2",
            "Table 3", "Figure 3", "Figure 4", "Figure 5",
        ):
            assert token in report

    def test_table1_marks_inactive(self, small_dataset):
        text = render_table1(small_dataset)
        bl_all_line = next(l for l in text.splitlines() if l.startswith("BL-ALL"))
        assert "| -" in bl_all_line

    def test_table2_has_global_row(self, small_dataset):
        assert "Facebook" in render_table2(small_dataset)

    def test_figure1_bars(self, small_dataset):
        text = render_figure1(small_dataset)
        assert "FB-ALL" in text
        assert "%" in text

    def test_figure2_time_column(self, small_dataset):
        text = render_figure2(small_dataset)
        assert text.splitlines()[1].startswith("Day")

    def test_strategy_table(self, small_dataset):
        text = render_strategy_classification(small_dataset)
        assert "burst" in text
        assert "trickle" in text

    def test_table3_providers(self, small_dataset):
        text = render_table3(small_dataset)
        for provider in ("Facebook.com", "BoostLikes.com", "ALMS"):
            assert provider in text

    def test_figures_3_4_5(self, small_dataset):
        assert "Components" in render_figure3(small_dataset)
        assert "Baseline" in render_figure4(small_dataset)
        assert "Jaccard" in render_figure5(small_dataset)
