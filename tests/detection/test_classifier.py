"""Tests for repro.detection.classifier."""

import numpy as np
import pytest

from repro.detection.classifier import LogisticRegressionModel, train_test_split
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


def separable_data(n=200, seed=3):
    """Two Gaussian blobs, cleanly separable."""
    generator = np.random.default_rng(seed)
    negatives = generator.normal(loc=-2.0, scale=0.5, size=(n // 2, 3))
    positives = generator.normal(loc=+2.0, scale=0.5, size=(n // 2, 3))
    features = np.vstack([negatives, positives])
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    return features, labels


class TestLogisticRegression:
    def test_learns_separable_data(self):
        features, labels = separable_data()
        model = LogisticRegressionModel().fit(features, labels)
        predictions = model.predict(features)
        assert (predictions == labels).mean() > 0.98

    def test_probabilities_bounded(self):
        features, labels = separable_data()
        model = LogisticRegressionModel().fit(features, labels)
        proba = model.predict_proba(features)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_constant_feature_handled(self):
        features, labels = separable_data()
        features = np.hstack([features, np.ones((len(features), 1))])
        model = LogisticRegressionModel().fit(features, labels)
        assert model.is_fitted  # zero-variance column must not divide by zero

    def test_unfitted_predict_rejected(self):
        model = LogisticRegressionModel()
        with pytest.raises(ValidationError):
            model.predict(np.zeros((2, 3)))

    def test_non_binary_labels_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegressionModel().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_feature_importance_sorted(self):
        features, labels = separable_data()
        model = LogisticRegressionModel().fit(features, labels)
        ranked = model.feature_importance(["a", "b", "c"])
        magnitudes = [abs(w) for _, w in ranked]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_importance_name_mismatch_rejected(self):
        features, labels = separable_data()
        model = LogisticRegressionModel().fit(features, labels)
        with pytest.raises(ValidationError):
            model.feature_importance(["too", "few"])

    def test_deterministic(self):
        features, labels = separable_data()
        a = LogisticRegressionModel().fit(features, labels)
        b = LogisticRegressionModel().fit(features, labels)
        assert np.allclose(a.weights, b.weights)


class TestTrainTestSplit:
    def test_sizes(self):
        features, labels = separable_data(100)
        trx, try_, tex, tey = train_test_split(
            features, labels, RngStream(1), test_fraction=0.3
        )
        assert len(trx) == 70
        assert len(tex) == 30
        assert len(trx) + len(tex) == 100

    def test_no_overlap_covers_all(self):
        features = np.arange(20).reshape(20, 1).astype(float)
        labels = np.zeros(20)
        trx, _, tex, _ = train_test_split(features, labels, RngStream(2))
        combined = sorted(float(x) for x in np.vstack([trx, tex]).ravel())
        assert combined == sorted(float(x) for x in features.ravel())

    def test_deterministic_given_stream_seed(self):
        features, labels = separable_data(50)
        a = train_test_split(features, labels, RngStream(5))
        b = train_test_split(features, labels, RngStream(5))
        assert np.array_equal(a[0], b[0])

    def test_invalid_fraction(self):
        features, labels = separable_data(10)
        with pytest.raises(ValidationError):
            train_test_split(features, labels, RngStream(1), test_fraction=1.0)

    def test_tiny_dataset_keeps_both_sides(self):
        features = np.zeros((2, 1))
        labels = np.array([0, 1])
        trx, _, tex, _ = train_test_split(features, labels, RngStream(1), 0.5)
        assert len(trx) >= 1 and len(tex) >= 1
