"""Tests for repro.detection.features."""

import numpy as np

from repro.detection.features import (
    FEATURE_NAMES,
    build_feature_matrix,
    extract_liker_features,
)


class TestExtraction:
    def test_one_vector_per_liker(self, small_dataset):
        features = extract_liker_features(small_dataset)
        assert len(features) == len(small_dataset.likers)
        assert all(len(f.values) == len(FEATURE_NAMES) for f in features)

    def test_as_dict_names(self, small_dataset):
        features = extract_liker_features(small_dataset)
        assert set(features[0].as_dict()) == set(FEATURE_NAMES)

    def test_like_count_matches_record(self, small_dataset):
        features = {f.user_id: f for f in extract_liker_features(small_dataset)}
        for liker in small_dataset.likers.values():
            assert features[liker.user_id].as_dict()["like_count"] == float(
                liker.declared_like_count
            )

    def test_private_friend_list_encoded(self, small_dataset):
        features = {f.user_id: f for f in extract_liker_features(small_dataset)}
        for liker in small_dataset.likers.values():
            vector = features[liker.user_id].as_dict()
            assert vector["friend_list_private"] == (0.0 if liker.friend_list_public else 1.0)
            if not liker.friend_list_public:
                assert vector["friend_count"] == 0.0

    def test_burst_share_high_for_burst_farm_likers(self, small_dataset):
        features = {f.user_id: f for f in extract_liker_features(small_dataset)}
        al = small_dataset.campaign("AL-USA")
        bl = small_dataset.campaign("BL-USA")
        al_burst = np.mean(
            [features[u].as_dict()["burst_share"] for u in al.liker_ids]
        )
        bl_burst = np.mean(
            [features[u].as_dict()["burst_share"] for u in bl.liker_ids]
        )
        assert al_burst > 3 * bl_burst

    def test_country_mismatch_for_socialformula_usa(self, small_dataset):
        features = {f.user_id: f for f in extract_liker_features(small_dataset)}
        sf_usa = small_dataset.campaign("SF-USA")
        mismatches = [
            features[u].as_dict()["country_mismatch"] for u in sf_usa.liker_ids
        ]
        assert np.mean(mismatches) > 0.9  # Turkish profiles on a USA order

    def test_honeypots_liked_counts_campaigns(self, small_dataset):
        features = {f.user_id: f for f in extract_liker_features(small_dataset)}
        for liker in small_dataset.likers.values():
            assert features[liker.user_id].as_dict()["honeypots_liked"] == float(
                len(liker.campaign_ids)
            )


class TestMatrix:
    def test_shape(self, small_dataset):
        features = extract_liker_features(small_dataset)
        matrix, user_ids = build_feature_matrix(features)
        assert matrix.shape == (len(features), len(FEATURE_NAMES))
        assert len(user_ids) == len(features)

    def test_empty(self):
        matrix, user_ids = build_feature_matrix([])
        assert matrix.shape == (0, len(FEATURE_NAMES))
        assert user_ids == []
