"""Tests for repro.detection.thresholds."""

import numpy as np
import pytest

from repro.detection.classifier import LogisticRegressionModel
from repro.detection.features import build_feature_matrix, extract_liker_features
from repro.detection.evaluate import ground_truth_labels
from repro.detection.thresholds import OperatingPoint, SweepResult, sweep_scores
from repro.util.validation import ValidationError


def toy_scores():
    """Fakes score high, organics low, with one noisy pair."""
    scores = {1: 0.9, 2: 0.8, 3: 0.7, 4: 0.3, 5: 0.2, 6: 0.6, 7: 0.4}
    labels = {1: True, 2: True, 3: True, 4: False, 5: False,
              6: False, 7: True}
    return scores, labels


class TestSweepScores:
    def test_extreme_thresholds(self):
        scores, labels = toy_scores()
        result = sweep_scores(scores, labels, thresholds=[0.0, 1.0])
        low, high = result.points
        assert low.metrics.recall == 1.0  # everything flagged
        assert high.metrics.recall == 0.0  # nothing flagged

    def test_recall_monotone_in_threshold(self):
        scores, labels = toy_scores()
        thresholds = [0.0, 0.25, 0.5, 0.75, 1.0]
        result = sweep_scores(scores, labels, thresholds=thresholds)
        recalls = [p.metrics.recall for p in result.points]
        assert recalls == sorted(recalls, reverse=True)

    def test_best_f1(self):
        scores, labels = toy_scores()
        result = sweep_scores(scores, labels, thresholds=[0.1, 0.5, 0.95])
        best = result.best_f1()
        assert isinstance(best, OperatingPoint)
        assert best.metrics.f1 == max(p.metrics.f1 for p in result.points)

    def test_precision_at_recall(self):
        scores, labels = toy_scores()
        result = sweep_scores(scores, labels, thresholds=[0.0, 0.65])
        assert result.precision_at_recall(0.99) == pytest.approx(4 / 7)

    def test_recall_at_precision_unreachable(self):
        scores = {1: 0.9, 2: 0.9}
        labels = {1: False, 2: False}
        result = sweep_scores(scores, labels, thresholds=[0.5])
        assert result.recall_at_precision(0.9) == 0.0

    def test_default_thresholds_from_deciles(self):
        scores, labels = toy_scores()
        result = sweep_scores(scores, labels)
        assert 2 <= len(result.points) <= 11

    def test_missing_label_rejected(self):
        with pytest.raises(ValidationError):
            sweep_scores({1: 0.5}, {2: True})

    def test_empty_scores_rejected(self):
        with pytest.raises(ValidationError):
            sweep_scores({}, {1: True})


class TestSweepOnStudy:
    def test_classifier_sweep_shape(self, small_dataset, small_artifacts):
        labels = ground_truth_labels(small_artifacts.network, small_dataset)
        features = extract_liker_features(small_dataset)
        matrix, user_ids = build_feature_matrix(features)
        y = np.array([1 if labels[u] else 0 for u in user_ids])
        model = LogisticRegressionModel(iterations=200).fit(matrix, y)
        scores = dict(zip(user_ids, model.predict_proba(matrix)))
        result = sweep_scores(scores, labels)
        best = result.best_f1()
        # honeypot likers are overwhelmingly fake: F1 should be very high
        assert best.metrics.f1 > 0.9
        curve = result.curve()
        assert all(0 <= r <= 1 and 0 <= p <= 1 for r, p in curve)
