"""Tests for repro.detection.graphrules."""

import pytest

from repro.analysis.social import provider_membership
from repro.detection.evaluate import (
    evaluate_flags,
    ground_truth_labels,
    recall_by_provider,
)
from repro.detection.features import extract_liker_features
from repro.detection.graphrules import (
    GraphCommunityDetector,
    combined_flags,
)
from repro.detection.rules import RuleBasedDetector
from repro.honeypot.storage import (
    CampaignRecord,
    HoneypotDataset,
    LikeObservation,
    LikerRecord,
)
from repro.util.validation import ValidationError


def dataset_with_structure():
    """Ten likers: a dense 5-clique, an isolated triplet-clique, 2 singletons."""
    dataset = HoneypotDataset()
    likers = list(range(1, 11))
    dataset.campaigns["C"] = CampaignRecord(
        campaign_id="C", provider="X", kind="like_farm", location_label="USA",
        budget_label="$", duration_days=3, monitored_days=10, page_id=1,
        total_likes=len(likers),
        observations=[LikeObservation(observed_at=i, user_id=u)
                      for i, u in enumerate(likers)],
    )
    clique = [1, 2, 3, 4, 5]
    triplet = [6, 7, 8]
    for uid in likers:
        if uid in clique:
            friends = [f for f in clique if f != uid]
        elif uid in triplet:
            friends = [f for f in triplet if f != uid]
        else:
            friends = []
        dataset.likers[uid] = LikerRecord(
            user_id=uid, gender="M", age_bracket="18-24", country="US",
            friend_list_public=True, declared_friend_count=len(friends),
            visible_friend_ids=friends, campaign_ids=["C"],
        )
    return dataset


class TestGraphCommunityDetector:
    def test_large_component_flagged(self):
        detector = GraphCommunityDetector(min_component_size=5, min_density=0.99)
        flagged = detector.flagged_users(dataset_with_structure())
        assert {1, 2, 3, 4, 5} <= flagged

    def test_dense_triplet_flagged_by_density(self):
        detector = GraphCommunityDetector(min_component_size=50, min_density=0.9)
        flagged = detector.flagged_users(dataset_with_structure())
        assert {6, 7, 8} <= flagged
        assert not ({9, 10} & flagged)

    def test_singletons_never_flagged(self):
        detector = GraphCommunityDetector(min_component_size=2)
        flagged = detector.flagged_users(dataset_with_structure())
        assert not ({9, 10} & flagged)

    def test_component_metadata(self):
        detector = GraphCommunityDetector(min_component_size=5)
        components = detector.suspicious_components(dataset_with_structure())
        big = next(c for c in components if c.size == 5)
        assert big.n_edges == 10
        assert big.density == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            GraphCommunityDetector(min_component_size=0)
        with pytest.raises(ValidationError):
            GraphCommunityDetector(min_density=0.0)


class TestOnStudy:
    def test_graph_detector_catches_boostlikes(self, small_dataset, small_artifacts):
        """The complement result: graph structure exposes the stealth farm."""
        labels = ground_truth_labels(small_artifacts.network, small_dataset)
        membership = provider_membership(small_dataset)
        flagged = GraphCommunityDetector().flagged_users(small_dataset)
        recalls = recall_by_provider(flagged, labels, membership)
        # graph rules catch BoostLikes far better than volume rules do
        assert recalls["BoostLikes.com"] > 0.4
        metrics = evaluate_flags(flagged, labels)
        assert metrics.precision > 0.95

    def test_combined_beats_either_alone(self, small_dataset, small_artifacts):
        labels = ground_truth_labels(small_artifacts.network, small_dataset)
        features = extract_liker_features(small_dataset)
        rules = {
            u for u, v in RuleBasedDetector().classify_all(features).items()
            if v.flagged
        }
        flags = combined_flags(small_dataset, rules)
        rule_recall = evaluate_flags(flags["rules"], labels).recall
        graph_recall = evaluate_flags(flags["graph"], labels).recall
        combined = evaluate_flags(flags["combined"], labels)
        assert combined.recall >= max(rule_recall, graph_recall)
        assert combined.recall > 0.93
        assert combined.precision > 0.95

    def test_combined_closes_stealth_gap(self, small_dataset, small_artifacts):
        labels = ground_truth_labels(small_artifacts.network, small_dataset)
        membership = provider_membership(small_dataset)
        features = extract_liker_features(small_dataset)
        rules = {
            u for u, v in RuleBasedDetector().classify_all(features).items()
            if v.flagged
        }
        flags = combined_flags(small_dataset, rules)
        rule_bl = recall_by_provider(flags["rules"], labels, membership)
        combined_bl = recall_by_provider(flags["combined"], labels, membership)
        assert combined_bl["BoostLikes.com"] > 2 * rule_bl["BoostLikes.com"]
