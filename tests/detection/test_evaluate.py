"""Tests for repro.detection.evaluate."""

import pytest

from repro.analysis.social import provider_membership
from repro.detection.evaluate import (
    DetectionMetrics,
    evaluate_flags,
    ground_truth_labels,
    recall_by_provider,
)
from repro.detection.features import extract_liker_features
from repro.detection.rules import RuleBasedDetector
from repro.util.validation import ValidationError


class TestDetectionMetrics:
    def test_perfect(self):
        metrics = DetectionMetrics(10, 0, 10, 0)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0
        assert metrics.accuracy == 1.0

    def test_nothing_flagged(self):
        metrics = DetectionMetrics(0, 0, 10, 5)
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_mixed(self):
        metrics = DetectionMetrics(true_positives=6, false_positives=2,
                                   true_negatives=10, false_negatives=4)
        assert metrics.precision == pytest.approx(0.75)
        assert metrics.recall == pytest.approx(0.6)
        assert metrics.accuracy == pytest.approx(16 / 22)


class TestEvaluateFlags:
    def test_counts(self):
        labels = {1: True, 2: True, 3: False, 4: False}
        metrics = evaluate_flags([1, 3], labels)
        assert metrics.true_positives == 1
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 1
        assert metrics.true_negatives == 1

    def test_empty_labels_rejected(self):
        with pytest.raises(ValidationError):
            evaluate_flags([1], {})


class TestGroundTruth:
    def test_labels_cover_likers(self, small_dataset, small_artifacts):
        labels = ground_truth_labels(small_artifacts.network, small_dataset)
        assert set(labels) == set(small_dataset.likers)

    def test_most_likers_fake(self, small_dataset, small_artifacts):
        """The honeypot's premise: it attracts fake accounts."""
        labels = ground_truth_labels(small_artifacts.network, small_dataset)
        fake_share = sum(labels.values()) / len(labels)
        assert fake_share > 0.9


class TestRecallByProvider:
    def test_stealth_farm_evades(self, small_dataset, small_artifacts):
        """The paper's conclusion, quantified: rules catch burst farms but
        miss most BoostLikes likers."""
        labels = ground_truth_labels(small_artifacts.network, small_dataset)
        feats = extract_liker_features(small_dataset)
        verdicts = RuleBasedDetector().classify_all(feats)
        flagged = [u for u, v in verdicts.items() if v.flagged]
        recalls = recall_by_provider(
            flagged, labels, provider_membership(small_dataset)
        )
        assert recalls["SocialFormula.com"] > 0.9
        assert recalls["AuthenticLikes.com"] > 0.9
        assert recalls["BoostLikes.com"] < 0.5

    def test_unknown_provider_skipped(self):
        labels = {1: True}
        assert recall_by_provider([1], labels, {}) == {}
