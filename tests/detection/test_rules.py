"""Tests for repro.detection.rules and repro.detection.lockstep."""

import pytest

from repro.detection.features import LikerFeatures, FEATURE_NAMES
from repro.detection.lockstep import LockstepDetector
from repro.detection.rules import RuleBasedDetector
from repro.util.validation import ValidationError


def features(**overrides):
    values = dict(
        like_count=30.0, friend_count=120.0, friend_list_private=0.0,
        burst_share=0.05, honeypots_liked=1.0, country_mismatch=0.0,
        is_young=0.0,
    )
    values.update(overrides)
    return LikerFeatures(user_id=1, values=tuple(values[n] for n in FEATURE_NAMES))


class TestRuleBasedDetector:
    def test_normal_user_not_flagged(self):
        verdict = RuleBasedDetector().classify(features())
        assert not verdict.flagged
        assert verdict.fired_rules == ()

    def test_excessive_likes_flagged(self):
        verdict = RuleBasedDetector().classify(features(like_count=1500.0))
        assert verdict.flagged
        assert "excessive-page-likes" in verdict.fired_rules

    def test_burst_flagged(self):
        verdict = RuleBasedDetector().classify(features(burst_share=0.8))
        assert "burst-delivery" in verdict.fired_rules

    def test_multi_honeypot_flagged(self):
        verdict = RuleBasedDetector().classify(features(honeypots_liked=2.0))
        assert "multiple-honeypots" in verdict.fired_rules

    def test_mismatch_flagged(self):
        verdict = RuleBasedDetector().classify(features(country_mismatch=1.0))
        assert "targeting-mismatch" in verdict.fired_rules

    def test_min_votes(self):
        detector = RuleBasedDetector(min_votes=2)
        single = detector.classify(features(like_count=1500.0))
        double = detector.classify(features(like_count=1500.0, burst_share=0.9))
        assert not single.flagged
        assert double.flagged

    def test_classify_all(self, small_dataset):
        from repro.detection.features import extract_liker_features
        feats = extract_liker_features(small_dataset)
        verdicts = RuleBasedDetector().classify_all(feats)
        assert len(verdicts) == len(feats)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RuleBasedDetector(min_votes=0)
        with pytest.raises(ValidationError):
            RuleBasedDetector(burst_share_threshold=0.0)


class TestLockstepDetector:
    def test_flags_burst_farm_reuse(self, small_dataset):
        detector = LockstepDetector(min_group=3)
        groups = detector.find_groups(small_dataset)
        # AL and MS shared-operator users co-like within the burst windows
        pairs = {g.campaign_pair for g in groups}
        assert ("AL-USA", "MS-USA") in pairs

    def test_flagged_users_are_reused_accounts(self, small_dataset):
        detector = LockstepDetector(min_group=3)
        flagged = detector.flagged_users(small_dataset)
        for user_id in flagged:
            assert len(small_dataset.likers[user_id].campaign_ids) >= 2

    def test_boostlikes_escapes(self, small_dataset):
        """The paper's caveat: stealth-farm likers do not form lockstep groups."""
        detector = LockstepDetector(min_group=3)
        flagged = detector.flagged_users(small_dataset)
        bl_likers = set(small_dataset.campaign("BL-USA").liker_ids)
        assert not (flagged & bl_likers)

    def test_min_group_threshold(self, small_dataset):
        lenient = LockstepDetector(min_group=2).flagged_users(small_dataset)
        strict = LockstepDetector(min_group=50).flagged_users(small_dataset)
        assert len(strict) <= len(lenient)

    def test_validation(self):
        with pytest.raises(ValidationError):
            LockstepDetector(window=0)
        with pytest.raises(ValidationError):
            LockstepDetector(min_group=1)
