"""Tests for repro.util.distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.distributions import (
    Categorical,
    LogNormalCount,
    interpolate_counts,
    split_into_groups,
    weighted_sample_without_replacement,
    zipf_weights,
)
from repro.util.rng import RngStream
from repro.util.validation import ValidationError


class TestCategorical:
    def test_normalisation(self):
        dist = Categorical({"a": 3, "b": 1})
        assert dist.probability("a") == pytest.approx(0.75)
        assert dist.probability("b") == pytest.approx(0.25)

    def test_unknown_label_zero(self):
        assert Categorical({"a": 1}).probability("zzz") == 0.0

    def test_sampling_frequencies(self, rng):
        dist = Categorical({"a": 9, "b": 1})
        draws = dist.sample_many(rng, 5000)
        share_a = draws.count("a") / len(draws)
        assert 0.85 < share_a < 0.95

    def test_sample_many_zero(self, rng):
        assert Categorical({"a": 1}).sample_many(rng, 0) == []

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Categorical({})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            Categorical({"a": -1, "b": 2})

    def test_all_zero_rejected(self):
        with pytest.raises(ValidationError):
            Categorical({"a": 0})

    def test_rescaled(self):
        # as_dict() normalises to {a: 0.5, b: 0.5}; the override replaces
        # a's weight with 3, so P(a) = 3 / 3.5.
        dist = Categorical({"a": 1, "b": 1}).rescaled({"a": 3})
        assert dist.probability("a") == pytest.approx(3 / 3.5)

    def test_as_dict_sums_to_one(self):
        pmf = Categorical({"x": 2, "y": 5, "z": 3}).as_dict()
        assert sum(pmf.values()) == pytest.approx(1.0)

    @given(st.dictionaries(st.text(min_size=1, max_size=4),
                           st.floats(min_value=0.01, max_value=100),
                           min_size=1, max_size=8))
    def test_property_pmf_normalised(self, weights):
        pmf = Categorical(weights).as_dict()
        assert sum(pmf.values()) == pytest.approx(1.0)


class TestLogNormalCount:
    def test_median_close_to_target(self, rng):
        dist = LogNormalCount(median=100, sigma=0.8)
        draws = dist.sample_many(rng, 20000)
        assert 90 <= float(np.median(draws)) <= 110

    def test_bounds_respected(self, rng):
        dist = LogNormalCount(median=10, sigma=2.0, minimum=5, maximum=20)
        draws = dist.sample_many(rng, 1000)
        assert all(5 <= d <= 20 for d in draws)

    def test_single_sample_int(self, rng):
        assert isinstance(LogNormalCount(median=34, sigma=1.0).sample(rng), int)

    def test_invalid_median(self):
        with pytest.raises(ValidationError):
            LogNormalCount(median=0, sigma=1.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValidationError):
            LogNormalCount(median=10, sigma=1.0, minimum=20, maximum=10)


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(10).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, exponent=1.2)
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))

    def test_single_rank(self):
        assert zipf_weights(1)[0] == pytest.approx(1.0)

    def test_invalid_n(self):
        with pytest.raises(ValidationError):
            zipf_weights(0)


class TestWeightedSampleWithoutReplacement:
    def test_distinct_results(self, rng):
        items = list(range(100))
        weights = zipf_weights(100)
        out = weighted_sample_without_replacement(rng, items, weights, 30)
        assert len(out) == len(set(out)) == 30

    def test_zero_k(self, rng):
        assert weighted_sample_without_replacement(rng, [1, 2], np.array([1, 1]), 0) == []

    def test_heavy_weight_preferred(self, rng):
        items = ["heavy", "light"]
        weights = np.array([100.0, 0.001])
        hits = sum(
            weighted_sample_without_replacement(rng, items, weights, 1)[0] == "heavy"
            for _ in range(200)
        )
        assert hits > 190

    def test_zero_weight_excluded(self, rng):
        items = ["a", "b", "c"]
        weights = np.array([1.0, 0.0, 1.0])
        for _ in range(50):
            out = weighted_sample_without_replacement(rng, items, weights, 2)
            assert "b" not in out

    def test_not_enough_positive_weights(self, rng):
        with pytest.raises(ValidationError):
            weighted_sample_without_replacement(rng, ["a", "b"], np.array([1.0, 0.0]), 2)

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValidationError):
            weighted_sample_without_replacement(rng, ["a"], np.array([1.0, 2.0]), 1)

    def test_whole_population_short_circuit(self, rng):
        items = list(range(40))
        weights = zipf_weights(40)
        out = weighted_sample_without_replacement(rng, items, weights, 40)
        assert out == items  # population order, no key sort

    def test_whole_population_preserves_stream_alignment(self):
        # The short-circuit must consume exactly as many uniforms as the
        # weighted path would, so draws after it are unaffected.
        from repro.util.rng import RngStream

        items = list(range(25))
        weights = zipf_weights(25)
        sampled = RngStream(123, "sampled")
        weighted_sample_without_replacement(sampled, items, weights, 25)
        burned = RngStream(123, "burned")
        burned.generator.random(25)
        assert sampled.random() == burned.random()

    def test_whole_population_needs_all_positive(self, rng):
        with pytest.raises(ValidationError):
            weighted_sample_without_replacement(
                rng, ["a", "b"], np.array([1.0, 0.0]), 2
            )


class TestInterpolateCounts:
    def test_sums_to_total(self):
        parts = interpolate_counts(100, [0.5, 0.3, 0.2])
        assert sum(parts) == 100

    def test_proportions(self):
        parts = interpolate_counts(1000, [1, 1, 2])
        assert parts == [250, 250, 500]

    def test_zero_total(self):
        assert interpolate_counts(0, [1, 2]) == [0, 0]

    def test_unnormalised_fractions(self):
        assert sum(interpolate_counts(7, [10, 20, 30])) == 7

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=10)
        .filter(lambda fs: sum(fs) > 0.01),
    )
    @settings(max_examples=100)
    def test_property_exact_total(self, total, fractions):
        parts = interpolate_counts(total, fractions)
        assert sum(parts) == total
        assert all(p >= 0 for p in parts)


class TestSplitIntoGroups:
    def test_partition_complete(self, rng):
        items = list(range(23))
        groups = split_into_groups(rng, items, sizes=(2, 3))
        flattened = [x for group in groups for x in group]
        assert sorted(flattened) == items

    def test_group_sizes(self, rng):
        groups = split_into_groups(rng, list(range(40)), sizes=(2, 3))
        # all groups except possibly the last have an allowed size
        for group in groups[:-1]:
            assert len(group) in (2, 3)

    def test_empty_input(self, rng):
        assert split_into_groups(rng, []) == []

    def test_invalid_sizes(self, rng):
        import pytest
        with pytest.raises(ValidationError):
            split_into_groups(rng, [1, 2], sizes=(0,))
