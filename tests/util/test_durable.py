"""Tests for repro.util.durable (atomic, fsync'd writes)."""

import json

import pytest

from repro.util.durable import (
    FSYNC_COUNTS,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
    fsync_handle,
)


class TestAtomicWriteText:
    def test_writes_content_and_leaves_no_temp(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "hello\n")
        assert (tmp_path / "a.txt").read_text() == "hello\n"
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "one\n")
        atomic_write_text(tmp_path / "a.txt", "two\n")
        assert (tmp_path / "a.txt").read_text() == "two\n"

    def test_counts_file_and_directory_fsyncs(self, tmp_path):
        before = FSYNC_COUNTS.get("probe", 0)
        atomic_write_text(tmp_path / "a.txt", "x", tag="probe")
        assert FSYNC_COUNTS.get("probe", 0) == before + 2

    def test_failure_cleans_up_the_temp_file(self, tmp_path):
        with pytest.raises(TypeError):
            atomic_write_text(tmp_path / "a.txt", None)  # not writable text
        assert list(tmp_path.iterdir()) == []


class TestAtomicWriteJson:
    def test_sorted_stable_layout(self, tmp_path):
        atomic_write_json(tmp_path / "a.json", {"b": 1, "a": [2, 3]})
        text = (tmp_path / "a.json").read_text()
        assert text == json.dumps({"a": [2, 3], "b": 1}, indent=2, sort_keys=True) + "\n"
        assert json.loads(text) == {"a": [2, 3], "b": 1}


class TestFsyncPrimitives:
    def test_fsync_handle_flushes(self, tmp_path):
        path = tmp_path / "f.txt"
        with path.open("w") as handle:
            handle.write("data")
            fsync_handle(handle, tag="probe")
            # after an fsync the bytes are visible to an independent reader
            assert path.read_text() == "data"

    def test_fsync_dir_accepts_a_directory(self, tmp_path):
        fsync_dir(tmp_path, tag="probe")  # must simply not raise
