"""Tests for repro.util.rng."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngStream, derive_seed
from repro.util.validation import ValidationError


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "ads") == derive_seed(42, "ads")

    def test_label_changes_seed(self):
        assert derive_seed(42, "ads") != derive_seed(42, "farms")

    def test_root_changes_seed(self):
        assert derive_seed(42, "ads") != derive_seed(43, "ads")

    def test_empty_label_rejected(self):
        with pytest.raises(ValidationError):
            derive_seed(42, "")

    @given(st.integers(), st.text(min_size=1, max_size=32))
    def test_always_non_negative(self, seed, label):
        assert derive_seed(seed, label) >= 0


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(7).generator.random(10)
        b = RngStream(7).generator.random(10)
        assert list(a) == list(b)

    def test_child_independent_of_parent_state(self):
        parent = RngStream(7)
        child_before = parent.child("x").random()
        parent.random()  # consume parent state
        child_after = parent.child("x").random()
        assert child_before == child_after

    def test_children_with_different_labels_differ(self):
        parent = RngStream(7)
        assert parent.child("a").random() != parent.child("b").random()

    def test_bernoulli_extremes(self):
        stream = RngStream(1)
        assert not stream.bernoulli(0.0)
        assert stream.bernoulli(1.0)

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            RngStream(1).bernoulli(1.5)

    def test_randint_bounds(self):
        stream = RngStream(3)
        draws = [stream.randint(2, 5) for _ in range(200)]
        assert set(draws) <= {2, 3, 4}
        assert set(draws) == {2, 3, 4}  # all values reachable

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValidationError):
            RngStream(1).randint(5, 5)

    def test_choice_single(self):
        assert RngStream(1).choice(["only"]) == "only"

    def test_choice_empty_rejected(self):
        with pytest.raises(ValidationError):
            RngStream(1).choice([])

    def test_choice_with_size(self):
        out = RngStream(1).choice(list(range(10)), size=4)
        assert len(out) == 4
        assert all(x in range(10) for x in out)

    def test_shuffled_preserves_multiset_and_input(self):
        items = [1, 2, 3, 4, 5]
        original = list(items)
        shuffled = RngStream(9).shuffled(items)
        assert sorted(shuffled) == sorted(original)
        assert items == original

    def test_sample_without_replacement_distinct(self):
        out = RngStream(5).sample_without_replacement(list(range(20)), 10)
        assert len(out) == len(set(out)) == 10

    def test_sample_without_replacement_too_many(self):
        with pytest.raises(ValidationError):
            RngStream(5).sample_without_replacement([1, 2], 3)

    def test_poisson_non_negative(self):
        stream = RngStream(11)
        assert all(stream.poisson(3.0) >= 0 for _ in range(100))

    @given(st.integers(min_value=0, max_value=2**32))
    def test_uniform_within_bounds(self, seed):
        value = RngStream(seed).uniform(2.0, 3.0)
        assert 2.0 <= value < 3.0


class TestStateDict:
    def test_round_trip_resumes_the_exact_sequence(self):
        stream = RngStream(42, "ckpt")
        [stream.uniform(0, 1) for _ in range(10)]
        state = stream.state_dict()
        expected = [stream.uniform(0, 1) for _ in range(5)]
        resumed = RngStream(42, "ckpt")
        resumed.load_state_dict(state)
        assert [resumed.uniform(0, 1) for _ in range(5)] == expected

    def test_state_is_json_pure(self):
        import json

        state = RngStream(42, "ckpt").state_dict()
        assert json.loads(json.dumps(state)) == state

    def test_load_refuses_wrong_seed_or_label(self):
        state = RngStream(42, "ckpt").state_dict()
        with pytest.raises(ValidationError):
            RngStream(43, "ckpt").load_state_dict(state)
        with pytest.raises(ValidationError):
            RngStream(42, "other").load_state_dict(state)

    def test_child_states_are_independent(self):
        parent = RngStream(42, "study")
        child = parent.child("baseline")
        state = child.state_dict()
        parent.uniform(0, 1)  # advancing the parent must not move the child
        fresh = RngStream(42, "study").child("baseline")
        fresh.load_state_dict(state)
        assert fresh.uniform(0, 1) == child.uniform(0, 1)
