"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import (
    render_matrix,
    render_percentage_bars,
    render_series,
    render_table,
)
from repro.util.validation import ValidationError


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert "33" in lines[3]
        # all lines align
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456]])
        assert "1.23" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            render_table([], [])

    def test_no_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderSeries:
    def test_columns(self):
        out = render_series({"s1": [1, 2], "s2": [3, 4]}, x_values=[0, 1], x_label="t")
        assert "t" in out and "s1" in out and "s2" in out

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            render_series({"s": [1]}, x_values=[0, 1])


class TestRenderMatrix:
    def test_square(self):
        out = render_matrix(["a", "b"], [[1.0, 0.5], [0.5, 1.0]], precision=1)
        assert "0.5" in out

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            render_matrix(["a", "b"], [[1.0], [0.5]])

    def test_precision_zero_rounds(self):
        out = render_matrix(["a"], [[0.66]], precision=0)
        assert "1" in out.splitlines()[-1]


class TestRenderPercentageBars:
    def test_full_and_empty(self):
        out = render_percentage_bars({"x": 1.0, "y": 0.0}, width=10)
        lines = out.splitlines()
        assert "##########" in lines[0]
        assert "100.0%" in lines[0]
        assert "0.0%" in lines[1]

    def test_clamps_out_of_range(self):
        out = render_percentage_bars({"x": 1.7}, width=10)
        assert "100.0%" in out

    def test_invalid_width(self):
        with pytest.raises(ValidationError):
            render_percentage_bars({"x": 0.5}, width=0)
