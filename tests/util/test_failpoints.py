"""Unit tests for repro.failpoints (spec grammar, arming, firing)."""

import errno

import pytest

from repro import failpoints
from repro.failpoints import FailpointError, FaultSpec, parse_spec
from repro.util.durable import atomic_write_text, sweep_stale_tmp


@pytest.fixture(autouse=True)
def clean_registry():
    failpoints.reset()
    yield
    failpoints.reset()


class TestParseSpec:
    def test_full_grammar(self):
        specs = parse_spec("ckpt.journal.record=errno:ENOSPC@7")
        assert specs == [
            FaultSpec("ckpt.journal.record", "errno", "ENOSPC", 7)
        ]

    def test_nth_defaults_to_one_and_arg_is_optional(self):
        (spec,) = parse_spec("durable.rename=kill")
        assert (spec.action, spec.arg, spec.nth) == ("kill", "", 1)

    def test_comma_separated_items_and_blank_tolerance(self):
        specs = parse_spec("a=kill@2, b=torn ,")
        assert [s.name for s in specs] == ["a", "b"]

    def test_render_round_trips(self):
        for text in ("x=kill@3", "x=errno:EIO@1", "x=stall:5.0@2"):
            (spec,) = parse_spec(text)
            assert parse_spec(spec.render()) == [spec]

    @pytest.mark.parametrize(
        "bad",
        [
            "noequals",
            "x=",
            "=kill",
            "x=frobnicate",
            "x=kill@zero",
            "x=kill@0",
            "x=errno:NOTANERRNO",
        ],
    )
    def test_malformed_specs_are_refused(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)


class TestConfigure:
    def test_unknown_name_is_refused_with_the_catalog(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            failpoints.configure("no.such.site=kill")

    def test_star_expands_over_every_registered_name(self):
        armed = failpoints.configure("*=count")
        assert sorted(s.name for s in armed) == failpoints.all_failpoints()
        assert failpoints.is_armed()

    def test_reset_disarms(self):
        failpoints.configure("durable.rename=count")
        failpoints.reset()
        assert not failpoints.is_armed()
        assert failpoints.state()["hits"] == {}


class TestHit:
    def test_disarmed_hit_is_a_no_op(self):
        failpoints.hit("durable.rename")
        assert failpoints.state() == {"armed": {}, "hits": {}, "fired": []}

    def test_fires_on_exactly_the_nth_hit(self):
        failpoints.configure("store.open=raise@3")
        failpoints.hit("store.open")
        failpoints.hit("store.open")
        with pytest.raises(FailpointError):
            failpoints.hit("store.open")
        failpoints.hit("store.open")  # past the Nth: armed spec is spent
        assert failpoints.state()["hits"] == {"store.open": 4}

    def test_raise_carries_the_spec_arg_as_message(self):
        failpoints.configure("shard.worker.poison=raise:injected poison")
        with pytest.raises(FailpointError, match="injected poison"):
            failpoints.hit("shard.worker.poison")

    def test_errno_action_raises_oserror_with_that_code(self):
        failpoints.configure("durable.fsync.file=errno:ENOSPC")
        with pytest.raises(OSError) as excinfo:
            failpoints.hit("durable.fsync.file")
        assert excinfo.value.errno == errno.ENOSPC

    def test_count_action_records_without_firing_behaviour(self, capsys):
        failpoints.configure("*=count")
        failpoints.hit("durable.rename")
        failpoints.hit("durable.rename")
        state = failpoints.state()
        assert state["hits"]["durable.rename"] == 2
        assert [f["name"] for f in state["fired"]] == ["durable.rename"]
        assert capsys.readouterr().err == ""  # count stays silent

    def test_unarmed_names_do_not_accumulate_counters(self):
        failpoints.configure("store.open=count")
        failpoints.hit("durable.rename")
        assert "durable.rename" not in failpoints.state()["hits"]


class TestEnvInstall:
    def test_env_var_and_legacy_aliases_translate(self):
        armed = failpoints.install_from_env(
            {
                failpoints.ENV_VAR: "store.open=count",
                failpoints.CRASH_AFTER_ENV: "12",
                failpoints.STALL_AFTER_ENV: "3",
                failpoints.STALL_SECONDS_ENV: "0.5",
            }
        )
        rendered = sorted(s.render() for s in armed)
        assert rendered == [
            "ckpt.journal.record=kill@12",
            "ckpt.journal.record=stall:0.5@3",
            "store.open=count@1",
        ]

    def test_empty_environment_arms_nothing(self):
        assert failpoints.install_from_env({}) == []
        assert not failpoints.is_armed()

    def test_registry_rejects_duplicate_registration(self):
        with pytest.raises(ValueError, match="registered twice"):
            failpoints.register("durable.rename")


class TestTornWrites:
    def test_errno_at_write_leaves_target_untouched_and_no_tmp(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "before\n")
        failpoints.configure("durable.write.data=errno:EIO")
        with pytest.raises(OSError):
            atomic_write_text(target, "after\n")
        assert target.read_text() == "before\n"
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_sweep_stale_tmp_removes_only_orphans(self, tmp_path):
        atomic_write_text(tmp_path / "keep.json", "{}\n")
        orphan = tmp_path / "dead.json.tmp"
        orphan.write_text("half")
        removed = sweep_stale_tmp(tmp_path)
        assert removed == [orphan]
        assert sorted(p.name for p in tmp_path.iterdir()) == ["keep.json"]

    def test_sweep_of_a_missing_directory_is_a_no_op(self, tmp_path):
        assert sweep_stale_tmp(tmp_path / "nope") == []
