"""Tests for repro.util.timeutil."""

import pytest

from repro.util.timeutil import (
    CRAWL_INTERVAL,
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    days,
    format_time,
    hours,
    minutes,
    to_days,
)
from repro.util.validation import ValidationError


class TestConstants:
    def test_relationships(self):
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY
        assert CRAWL_INTERVAL == 2 * HOUR


class TestConversions:
    def test_days(self):
        assert days(1) == DAY
        assert days(1.5) == DAY + 12 * HOUR

    def test_hours(self):
        assert hours(2) == 2 * HOUR

    def test_minutes_rounds(self):
        assert minutes(1.6) == 2

    def test_to_days_roundtrip(self):
        assert to_days(days(3.5)) == pytest.approx(3.5)


class TestFormatTime:
    def test_epoch(self):
        assert format_time(0) == "D0 00:00"

    def test_mixed(self):
        assert format_time(DAY + 2 * HOUR + 5) == "D1 02:05"

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            format_time(-1)
