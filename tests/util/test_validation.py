"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    ValidationError,
    check_fraction,
    check_non_negative,
    check_positive,
    check_type,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")

    def test_is_value_error(self):
        with pytest.raises(ValueError):
            require(False, "compatible with ValueError handlers")


class TestCheckers:
    def test_check_positive_returns_value(self):
        assert check_positive(3.5, "x") == 3.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive(0, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_fraction_accepts(self, value):
        assert check_fraction(value, "f") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_check_fraction_rejects(self, value):
        with pytest.raises(ValidationError):
            check_fraction(value, "f")

    def test_check_type(self):
        assert check_type("s", str, "x") == "s"
        with pytest.raises(ValidationError):
            check_type("s", int, "x")
