"""Tests for repro.ads.audience."""

import pytest

from repro.ads.audience import (
    AudienceEstimate,
    NetworkAudienceEstimator,
    market_audience_weights,
)
from repro.ads.costmodel import CostModel
from repro.ads.targeting import TargetingSpec
from repro.osn.network import SocialNetwork
from repro.osn.profile import Gender


@pytest.fixture()
def net():
    network = SocialNetwork()
    for country, count in (("US", 30), ("IN", 60), ("FR", 10)):
        for _ in range(count):
            network.create_user(gender=Gender.MALE, age=25, country=country)
    # fraud accounts must not count toward advertiser-facing reach
    for _ in range(50):
        network.create_user(gender=Gender.MALE, age=20, country="US",
                            searchable=False, cohort="clickworker")
    return network


class TestNetworkAudienceEstimator:
    def test_worldwide_counts_everyone_searchable(self, net):
        estimator = NetworkAudienceEstimator(net, platform_population=1000)
        estimate = estimator.estimate(TargetingSpec.worldwide())
        assert estimate.matched_profiles == 100
        assert estimate.estimated_reach == 1000

    def test_country_share(self, net):
        estimator = NetworkAudienceEstimator(net, platform_population=1000)
        estimate = estimator.estimate(TargetingSpec.country("IN"))
        assert estimate.matched_profiles == 60
        assert estimate.estimated_reach == 600

    def test_fraud_accounts_excluded(self, net):
        estimator = NetworkAudienceEstimator(net, platform_population=1000)
        estimate = estimator.estimate(TargetingSpec.country("US"))
        assert estimate.matched_profiles == 30  # not 80

    def test_terminated_excluded(self, net):
        victim = next(p for p in net.all_users() if p.country == "FR")
        net.terminate_account(victim.user_id, time=0)
        estimator = NetworkAudienceEstimator(net, platform_population=1000)
        estimate = estimator.estimate(TargetingSpec.country("FR"))
        assert estimate.matched_profiles == 9

    def test_age_filter(self, net):
        estimator = NetworkAudienceEstimator(net, platform_population=1000)
        estimate = estimator.estimate(TargetingSpec(min_age=40))
        assert estimate.matched_profiles == 0

    def test_empty_network(self):
        estimator = NetworkAudienceEstimator(SocialNetwork(), platform_population=100)
        estimate = estimator.estimate(TargetingSpec.worldwide())
        assert estimate.estimated_reach == 0

    def test_estimate_type(self, net):
        estimator = NetworkAudienceEstimator(net)
        assert isinstance(estimator.estimate(TargetingSpec.worldwide()), AudienceEstimate)


class TestMarketAudienceWeights:
    def test_normalised(self):
        weights = market_audience_weights(CostModel(), TargetingSpec.worldwide())
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_single_country(self):
        weights = market_audience_weights(CostModel(), TargetingSpec.country("US"))
        assert weights == {"US": pytest.approx(1.0)}

    def test_inventory_ordering(self):
        weights = market_audience_weights(CostModel(), TargetingSpec.worldwide())
        assert weights["US"] > weights["FR"]
