"""Tests for repro.ads.reports."""

import pytest

from repro.ads.reports import ReportsTool
from repro.osn.network import SocialNetwork
from repro.osn.profile import AGE_BRACKETS, Gender


@pytest.fixture()
def net():
    network = SocialNetwork()
    page = network.create_page("P", category="honeypot")
    specs = [
        (Gender.FEMALE, 16, "US"),
        (Gender.FEMALE, 20, "US"),
        (Gender.MALE, 20, "IN"),
        (Gender.MALE, 40, "IN"),
    ]
    for gender, age, country in specs:
        user = network.create_user(gender=gender, age=age, country=country)
        network.like_page(user.user_id, page.page_id, time=0)
    return network, page


class TestPageReport:
    def test_totals_and_gender(self, net):
        network, page = net
        report = ReportsTool(network).page_report(page.page_id)
        assert report.total_likes == 4
        assert report.female_share == pytest.approx(0.5)
        assert report.male_share == pytest.approx(0.5)

    def test_age_brackets_complete(self, net):
        network, page = net
        report = ReportsTool(network).page_report(page.page_id)
        assert set(report.age) == set(AGE_BRACKETS)
        assert report.age["18-24"] == pytest.approx(0.5)
        assert sum(report.age.values()) == pytest.approx(1.0)

    def test_country_fractions(self, net):
        network, page = net
        report = ReportsTool(network).page_report(page.page_id)
        assert report.country == {"IN": 0.5, "US": 0.5}

    def test_empty_page(self, net):
        network, _ = net
        empty = network.create_page("empty")
        report = ReportsTool(network).page_report(empty.page_id)
        assert report.total_likes == 0
        assert report.gender == {}

    def test_terminated_likers_still_counted(self, net):
        network, page = net
        victim = network.page_liker_ids(page.page_id)[0]
        network.terminate_account(victim, time=5)
        report = ReportsTool(network).page_report(page.page_id)
        assert report.total_likes == 4


class TestGlobalReport:
    def test_covers_live_population(self, net):
        network, _ = net
        report = ReportsTool(network).global_report()
        assert report.total_likes == network.user_count

    def test_excludes_terminated(self, net):
        network, page = net
        victim = network.page_liker_ids(page.page_id)[0]
        network.terminate_account(victim, time=5)
        report = ReportsTool(network).global_report()
        assert report.total_likes == network.user_count - 1
