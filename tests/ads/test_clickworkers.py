"""Tests for repro.ads.clickworkers."""

import numpy as np
import pytest

from repro.ads.clickworkers import ClickWorkerConfig, ClickWorkerPopulation
from repro.osn.network import SocialNetwork
from repro.osn.population import PopulationConfig, WorldBuilder
from repro.osn.profile import Gender
from repro.util.rng import RngStream


@pytest.fixture()
def world(rng):
    net = SocialNetwork()
    built = WorldBuilder(PopulationConfig.small()).build(net, rng.child("w"))
    return net, built


@pytest.fixture()
def population(world, rng):
    net, built = world
    return net, ClickWorkerPopulation(net, built.universe, rng.child("cw"))


class TestPools:
    def test_ensure_pool_grows_once(self, population):
        net, pop = population
        first = pop.ensure_pool("IN", 50)
        again = pop.ensure_pool("IN", 30)
        assert len(first) == 50
        assert again == first  # no shrink, no regrow

    def test_ensure_pool_extends(self, population):
        net, pop = population
        pop.ensure_pool("IN", 20)
        bigger = pop.ensure_pool("IN", 60)
        assert len(bigger) == 60

    def test_pools_per_country(self, population):
        net, pop = population
        pop.ensure_pool("IN", 10)
        pop.ensure_pool("EG", 10)
        assert not (set(pop.pool("IN")) & set(pop.pool("EG")))

    def test_sample_worker_from_pool(self, population, rng):
        net, pop = population
        worker = pop.sample_worker("TR", rng, min_pool=25)
        assert worker in pop.pool("TR")


class TestWorkerProfiles:
    def test_cohort_and_country(self, population):
        net, pop = population
        for worker in pop.ensure_pool("IN", 30):
            profile = net.user(worker)
            assert profile.cohort == "clickworker"
            assert profile.country == "IN"
            assert not profile.searchable

    def test_india_male_skew(self, population):
        net, pop = population
        workers = pop.ensure_pool("IN", 200)
        males = sum(1 for w in workers if net.user(w).gender == Gender.MALE)
        assert males / len(workers) > 0.85  # config: 0.95

    def test_young_age_skew(self, population):
        net, pop = population
        workers = pop.ensure_pool("EG", 200)
        young = sum(
            1 for w in workers if net.user(w).age_bracket in ("13-17", "18-24")
        )
        assert young / len(workers) > 0.8

    def test_declared_like_counts_heavy(self, population):
        net, pop = population
        workers = pop.ensure_pool("IN", 100)
        counts = [net.declared_like_count(w) for w in workers]
        assert 500 <= float(np.median(counts)) <= 1300  # config median 800

    def test_explicit_likes_capped(self, population):
        net, pop = population
        cap = pop.config.explicit_like_cap
        for worker in pop.ensure_pool("IN", 50):
            assert net.user_like_count(worker) <= cap

    def test_friend_list_mostly_private(self, population):
        net, pop = population
        workers = pop.ensure_pool("IN", 200)
        public = sum(1 for w in workers if net.user(w).friend_list_public)
        assert public / len(workers) < 0.3  # config: 0.16

    def test_hubs_create_mutual_friends(self, population):
        net, pop = population
        workers = pop.ensure_pool("IN", 200)
        pairs = list(net.graph.mutual_friend_pairs(workers))
        assert len(pairs) > 0
        # hub-linked but not (necessarily) directly befriended
        direct = list(net.graph.edges_within(workers))
        assert len(pairs) > len(direct)

    def test_spam_segment_liked(self, world, rng):
        net, built = world
        pop = ClickWorkerPopulation(net, built.universe, rng.child("cw2"))
        workers = pop.ensure_pool("IN", 50)
        spam = set(built.universe.spam_pages)
        with_spam = sum(1 for w in workers if net.user_liked_page_ids(w) & spam)
        assert with_spam / len(workers) > 0.8
