"""Regression guard for the clickworker pool presize fix.

Ad delivery used to call ``ensure_pool`` once per scheduled click (4568
calls in a paper-scale build — the dominant hot spot in the pre-columnar
profile).  ``AdDeliveryEngine._presize_pools`` now grows every targeted
country's pool once per campaign launch from the campaign's expected
demand, and ``sample_worker`` reads a big-enough pool in place.  These
tests pin the call-count shape: pool maintenance must stay O(campaigns x
countries), never O(clicks).
"""

from __future__ import annotations

from repro.ads.clickworkers import ClickWorkerPopulation
from repro.core.experiment import HoneypotExperiment


def _run_counting(monkeypatch, experiment):
    """Run ``experiment`` counting pool-maintenance and pool-growth calls."""
    ensure_calls, growths = [], []
    original_ensure = ClickWorkerPopulation.ensure_pool
    original_create = ClickWorkerPopulation._create_workers

    def counting_ensure(self, country, size):
        ensure_calls.append((country, size))
        return original_ensure(self, country, size)

    def counting_create(self, country, count):
        growths.append((country, count))
        return original_create(self, country, count)

    monkeypatch.setattr(ClickWorkerPopulation, "ensure_pool", counting_ensure)
    monkeypatch.setattr(ClickWorkerPopulation, "_create_workers", counting_create)
    experiment.run()
    return ensure_calls, growths


def test_pool_calls_scale_with_countries_not_clicks(monkeypatch):
    experiment = HoneypotExperiment.small()
    ensure_calls, growths = _run_counting(monkeypatch, experiment)

    campaigns = experiment.artifacts.campaigns
    clicks = sum(campaign.clicks for campaign in campaigns.values())
    countries = {country for country, _ in ensure_calls}

    assert clicks > 100, "study scheduled too few clicks to exercise delivery"
    # Presize touches each targeted country at most once per campaign
    # launch; anything beyond campaigns x countries means per-click
    # maintenance crept back in.
    assert len(ensure_calls) <= len(campaigns) * len(countries), (
        f"{len(ensure_calls)} ensure_pool calls for {len(campaigns)} "
        f"campaigns over {len(countries)} countries — pool maintenance "
        "is no longer once-per-launch"
    )
    # The regression this guards: one ensure_pool per click/order.
    assert len(ensure_calls) < clicks / 10, (
        f"{len(ensure_calls)} ensure_pool calls vs {clicks} clicks — "
        "pool maintenance is scaling with order volume"
    )
    # Growth events are rarer still: a pool already at target size is a
    # no-op ensure, not a new worker batch.
    assert len(growths) <= len(ensure_calls)


def test_saturated_pool_is_not_regrown(monkeypatch):
    # Within one country, repeated ensure_pool calls at or below the
    # current size must not create workers again.
    experiment = HoneypotExperiment.small()
    ensure_calls, growths = _run_counting(monkeypatch, experiment)
    grown_per_country = {}
    for country, _ in growths:
        grown_per_country[country] = grown_per_country.get(country, 0) + 1
    # Each country grows at most once per campaign that targets it; with
    # five ad campaigns a country regrowing more than five times means
    # ensure_pool is being asked for ever-larger sizes per order.
    campaigns = len(experiment.artifacts.campaigns)
    for country, times in grown_per_country.items():
        assert times <= campaigns, (
            f"pool for {country} grew {times} times across {campaigns} "
            "campaign launches"
        )
