"""Tests for repro.ads.targeting."""

import pytest

from repro.ads.targeting import TargetingSpec
from repro.osn.profile import Gender, UserProfile
from repro.util.validation import ValidationError


def profile(country="US", age=25, gender=Gender.FEMALE):
    return UserProfile(user_id=1, gender=gender, age=age, country=country)


class TestTargetingSpec:
    def test_worldwide_matches_everyone(self):
        spec = TargetingSpec.worldwide()
        assert spec.is_worldwide
        assert spec.matches(profile(country="IN"))
        assert spec.matches(profile(country="US"))

    def test_country_filter(self):
        spec = TargetingSpec.country("FR")
        assert spec.matches(profile(country="FR"))
        assert not spec.matches(profile(country="US"))

    def test_age_bounds(self):
        spec = TargetingSpec(min_age=18, max_age=24)
        assert spec.matches(profile(age=18))
        assert spec.matches(profile(age=24))
        assert not spec.matches(profile(age=17))
        assert not spec.matches(profile(age=25))

    def test_gender_filter(self):
        spec = TargetingSpec(genders=(Gender.FEMALE,))
        assert spec.matches(profile(gender=Gender.FEMALE))
        assert not spec.matches(profile(gender=Gender.MALE))

    def test_allows_country(self):
        assert TargetingSpec.worldwide().allows_country("ZZ")
        assert TargetingSpec.country("US").allows_country("US")
        assert not TargetingSpec.country("US").allows_country("IN")

    def test_describe(self):
        assert TargetingSpec.worldwide().describe() == "Worldwide"
        assert TargetingSpec(countries=("US", "CA")).describe() == "US+CA"

    def test_invalid_ages(self):
        with pytest.raises(ValidationError):
            TargetingSpec(min_age=12)
        with pytest.raises(ValidationError):
            TargetingSpec(min_age=30, max_age=20)

    def test_empty_countries_rejected(self):
        with pytest.raises(ValidationError):
            TargetingSpec(countries=())
