"""Tests for repro.ads.campaign and repro.ads.delivery."""

import pytest

from repro.ads.campaign import AdCampaign
from repro.ads.clickworkers import ClickWorkerPopulation
from repro.ads.costmodel import CostModel
from repro.ads.delivery import AdDeliveryEngine, DeliveryConfig
from repro.ads.targeting import TargetingSpec
from repro.osn.network import SocialNetwork
from repro.osn.population import PopulationConfig, WorldBuilder
from repro.sim.engine import EventEngine
from repro.util.rng import RngStream
from repro.util.timeutil import DAY
from repro.util.validation import ValidationError


@pytest.fixture()
def setup(rng):
    net = SocialNetwork()
    world = WorldBuilder(PopulationConfig.small()).build(net, rng.child("w"))
    clickworkers = ClickWorkerPopulation(net, world.universe, rng.child("cw"))
    engine = EventEngine()
    delivery = AdDeliveryEngine(net, CostModel(), clickworkers, rng.child("d"))
    return net, engine, delivery


def run_campaign(net, engine, delivery, targeting, daily_budget=6.0, days=15):
    page = net.create_page("honeypot", category="honeypot")
    campaign = AdCampaign(
        page_id=page.page_id, targeting=targeting,
        daily_budget=daily_budget, duration_days=days,
        start_time=engine.clock.now,
    )
    delivery.launch(campaign, engine)
    engine.run_until(engine.clock.now + (days + 2) * DAY)
    return campaign


class TestAdCampaign:
    def test_lifecycle_fields(self):
        campaign = AdCampaign(
            page_id=1, targeting=TargetingSpec.worldwide(),
            daily_budget=6.0, duration_days=15,
        )
        assert campaign.total_budget == 90.0
        assert campaign.end_time == 15 * DAY
        assert campaign.is_active(0)
        assert not campaign.is_active(15 * DAY)

    def test_record_click_and_like(self):
        campaign = AdCampaign(
            page_id=1, targeting=TargetingSpec.worldwide(),
            daily_budget=6.0, duration_days=15,
        )
        campaign.record_click(0.5)
        campaign.record_like(user_id=42)
        assert campaign.spend == 0.5
        assert campaign.clicks == 1
        assert campaign.liker_ids == [42]

    def test_invalid_budget(self):
        with pytest.raises(ValidationError):
            AdCampaign(page_id=1, targeting=TargetingSpec.worldwide(),
                       daily_budget=0, duration_days=15)


class TestAdDelivery:
    def test_spend_bounded_by_budget(self, setup):
        net, engine, delivery = setup
        campaign = run_campaign(net, engine, delivery, TargetingSpec.country("EG"))
        assert campaign.spend <= campaign.total_budget + 0.1

    def test_targeted_country_respected(self, setup):
        net, engine, delivery = setup
        campaign = run_campaign(net, engine, delivery, TargetingSpec.country("EG"))
        assert campaign.likes_delivered > 0
        countries = {net.user(u).country for u in campaign.liker_ids}
        assert countries == {"EG"}

    def test_worldwide_dominated_by_india(self, setup):
        net, engine, delivery = setup
        campaign = run_campaign(net, engine, delivery, TargetingSpec.worldwide())
        from collections import Counter
        countries = Counter(net.user(u).country for u in campaign.liker_ids)
        assert countries.most_common(1)[0][0] == "IN"
        assert countries["IN"] / campaign.likes_delivered > 0.8

    def test_cheap_market_more_likes(self, setup):
        net, engine, delivery = setup
        egypt = run_campaign(net, engine, delivery, TargetingSpec.country("EG"))
        usa = run_campaign(net, engine, delivery, TargetingSpec.country("US"))
        assert egypt.likes_delivered > 3 * max(usa.likes_delivered, 1)

    def test_likes_recorded_on_network(self, setup):
        net, engine, delivery = setup
        campaign = run_campaign(net, engine, delivery, TargetingSpec.country("IN"))
        assert net.page_like_count(campaign.page_id) == campaign.likes_delivered

    def test_likers_mostly_clickworkers(self, setup):
        net, engine, delivery = setup
        campaign = run_campaign(net, engine, delivery, TargetingSpec.country("IN"))
        workers = sum(
            1 for u in campaign.liker_ids if net.user(u).cohort == "clickworker"
        )
        assert workers / campaign.likes_delivered > 0.8

    def test_deterministic_given_seed(self):
        def run(seed):
            rng = RngStream(seed, "test")
            net = SocialNetwork()
            world = WorldBuilder(PopulationConfig.small()).build(net, rng.child("w"))
            clickworkers = ClickWorkerPopulation(net, world.universe, rng.child("cw"))
            engine = EventEngine()
            delivery = AdDeliveryEngine(net, CostModel(), clickworkers, rng.child("d"))
            campaign = run_campaign(net, engine, delivery, TargetingSpec.country("EG"))
            return campaign.likes_delivered, campaign.spend

        assert run(11) == run(11)

    def test_delivery_config_validation(self):
        with pytest.raises(ValidationError):
            DeliveryConfig(clickworker_like_rate=1.5)
        with pytest.raises(ValidationError):
            DeliveryConfig(worker_pool_headroom=0.5)
