"""Tests for repro.ads.costmodel."""

import pytest

from repro.ads.costmodel import CostModel, CountryMarket
from repro.ads.targeting import TargetingSpec
from repro.util.validation import ValidationError


class TestCountryMarket:
    def test_validation(self):
        with pytest.raises(ValidationError):
            CountryMarket("US", cpc=0, audience_weight=1, clickworker_share=0.5)
        with pytest.raises(ValidationError):
            CountryMarket("US", cpc=1, audience_weight=1, clickworker_share=1.5)


class TestCostModel:
    def test_market_lookup_with_fallback(self):
        model = CostModel()
        assert model.market("US").country == "US"
        assert model.market("ZZ").country == "OTHER"

    def test_single_country_shares(self):
        model = CostModel()
        shares = model.budget_shares(TargetingSpec.country("FR"))
        assert shares == {"FR": pytest.approx(1.0)}

    def test_shares_sum_to_one(self):
        model = CostModel()
        shares = model.budget_shares(TargetingSpec.worldwide())
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_worldwide_collapses_to_india(self):
        """The paper's Figure 1 FB-ALL finding, at the budget level."""
        model = CostModel()
        shares = model.budget_shares(TargetingSpec.worldwide())
        assert max(shares, key=shares.get) == "IN"
        assert shares["IN"] > 0.85

    def test_unknown_targeted_country_served_via_fallback(self):
        model = CostModel()
        shares = model.budget_shares(TargetingSpec.country("ZA"))
        assert shares == {"ZA": pytest.approx(1.0)}

    def test_expected_clicks_scale_with_budget(self):
        model = CostModel()
        low = model.expected_clicks(TargetingSpec.country("US"), budget=10)
        high = model.expected_clicks(TargetingSpec.country("US"), budget=100)
        assert high["US"] == pytest.approx(10 * low["US"])

    def test_cheaper_market_more_clicks(self):
        model = CostModel()
        us = model.expected_clicks(TargetingSpec.country("US"), budget=90)["US"]
        india = model.expected_clicks(TargetingSpec.country("IN"), budget=90)["IN"]
        assert india > 5 * us

    def test_empty_model_rejected(self):
        with pytest.raises(ValidationError):
            CostModel(markets={})
