"""Tests for repro.obs.metrics."""

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    ObservabilityConfig,
)
from repro.obs.trace import EventTrace
from repro.util.validation import ValidationError


class TestCounters:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b")
        assert registry.value("a.b") == 2

    def test_inc_with_amount_and_floats(self):
        registry = MetricsRegistry()
        registry.inc("backoff", 2.5)
        registry.inc("backoff", 0.5)
        assert registry.value("backoff") == 3.0

    def test_untouched_counter_reads_zero(self):
        assert MetricsRegistry().value("never") == 0

    def test_set_counter_overwrites(self):
        registry = MetricsRegistry()
        registry.inc("x", 5)
        registry.set_counter("x", 2)
        assert registry.value("x") == 2

    def test_snapshot_sorted_and_int_tidied(self):
        registry = MetricsRegistry()
        registry.inc("z.last", 1)
        registry.inc("a.first", 2.0)
        snap = registry.counters_snapshot()
        assert list(snap) == ["a.first", "z.last"]
        assert snap["a.first"] == 2
        assert isinstance(snap["a.first"], int)


class TestGaugesAndTimings:
    def test_gauge_set_and_read(self):
        registry = MetricsRegistry()
        registry.set_gauge("virtual_minutes", 1440)
        assert registry.gauge("virtual_minutes") == 1440
        assert registry.gauge("missing") == 0

    def test_span_records_timing(self):
        registry = MetricsRegistry()
        with registry.span("phase"):
            pass
        timing = registry.timings_snapshot()["phase"]
        assert timing["count"] == 1
        assert timing["total_seconds"] >= 0

    def test_observe_accumulates(self):
        registry = MetricsRegistry()
        registry.observe("crawl", 1.0)
        registry.observe("crawl", 3.0)
        timing = registry.timings_snapshot()["crawl"]
        assert timing["count"] == 2
        assert timing["total_seconds"] == pytest.approx(4.0)
        assert timing["max_seconds"] == pytest.approx(3.0)

    def test_full_snapshot_sections(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.observe("t", 0.1)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "timings"}


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        null = NullMetricsRegistry()
        null.inc("a")
        null.set_counter("a", 9)
        null.set_gauge("g", 1)
        null.observe("t", 1.0)
        null.trace_event("kind", time=0, detail="x")
        with null.span("phase"):
            pass
        assert null.snapshot() == {"counters": {}, "gauges": {}, "timings": {}}

    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True

    def test_shared_instance_stays_empty(self):
        NULL_METRICS.inc("polluted")
        assert NULL_METRICS.value("polluted") == 0


class TestObservabilityConfig:
    def test_disabled_builds_shared_null(self):
        registry = ObservabilityConfig(enabled=False).build_registry()
        assert registry is NULL_METRICS

    def test_enabled_builds_real_registry_with_trace(self):
        registry = ObservabilityConfig(enabled=True, trace_limit=5).build_registry()
        assert registry.enabled
        assert isinstance(registry.trace, EventTrace)
        assert registry.trace.limit == 5

    def test_trace_limit_validated(self):
        with pytest.raises(ValidationError):
            ObservabilityConfig(trace_limit=0)

    def test_trace_event_forwarded(self):
        registry = ObservabilityConfig(enabled=True).build_registry()
        registry.trace_event("poll_gap", time=120, page=3)
        [event] = registry.trace.events
        assert event.kind == "poll_gap"
        assert event.time == 120
        assert event.fields == {"page": 3}
