"""Tests for repro.obs.trace."""

import json

from repro.obs.trace import EventTrace


class TestEventTrace:
    def test_emit_and_read_back(self):
        trace = EventTrace()
        trace.emit("order_placed", time=60, brand="BoostLikes.com")
        trace.emit("poll_gap", time=120)
        kinds = [event.kind for event in trace.events]
        assert kinds == ["order_placed", "poll_gap"]
        assert trace.emitted == 2
        assert trace.dropped == 0

    def test_ring_bound_drops_oldest(self):
        trace = EventTrace(limit=3)
        for i in range(10):
            trace.emit("tick", time=i)
        assert trace.emitted == 10
        assert trace.dropped == 7
        assert [event.time for event in trace.events] == [7, 8, 9]
        # sequence numbers survive eviction, exposing the gap
        assert [event.sequence for event in trace.events] == [7, 8, 9]

    def test_to_jsonl_round_trip(self, tmp_path):
        trace = EventTrace()
        trace.emit("phase", time=None, name="crawl")
        trace.emit("poll_gap", time=240, page=7)
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0] == {"seq": 0, "kind": "phase", "time": None, "name": "crawl"}
        assert rows[1] == {"seq": 1, "kind": "poll_gap", "time": 240, "page": 7}

    def test_to_jsonl_leaves_no_tmp_file(self, tmp_path):
        trace = EventTrace()
        trace.emit("x")
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]
