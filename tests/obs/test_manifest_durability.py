"""Regression: the run manifest is written atomically and fsync'd."""

import json

from repro.obs.manifest import write_manifest
from repro.util.durable import FSYNC_COUNTS

MANIFEST = {"schema": "repro.obs/manifest@1", "seed": 7, "counters": {"a": 1}}


class TestWriteManifestDurability:
    def test_fsyncs_file_and_directory(self, tmp_path):
        before = FSYNC_COUNTS.get("manifest", 0)
        write_manifest(tmp_path / "run.json", MANIFEST)
        assert FSYNC_COUNTS.get("manifest", 0) == before + 2

    def test_leaves_no_temp_file_and_round_trips(self, tmp_path):
        write_manifest(tmp_path / "run.json", MANIFEST)
        assert [p.name for p in tmp_path.iterdir()] == ["run.json"]
        assert json.loads((tmp_path / "run.json").read_text()) == MANIFEST
