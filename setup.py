"""Shim so `python setup.py develop` works on machines without the wheel
package (pip's editable install path needs bdist_wheel)."""
from setuptools import setup

setup()
