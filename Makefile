# Convenience targets for the reproduction workflow.

PYTHON ?= python

# Match the tier-1 verify command: run against the checkout without an
# editable install by putting src/ on PYTHONPATH.
RUN_ENV = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}

.PHONY: install test lint xmodlint check bench profile chaos crashtest shardtest storetest faultsweep metrics report examples clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(RUN_ENV) $(PYTHON) -m pytest tests/

# Determinism & simulation-hygiene linter (repro.lint): src/ must come out
# at zero non-baselined findings with every suppression used.  tests/ and
# benchmarks/ are held to the determinism rules only (DET001/002/004, no
# hygiene), against their own legacy baseline.
lint:
	$(RUN_ENV) $(PYTHON) -m repro.lint src --baseline lint-baseline.json
	$(RUN_ENV) $(PYTHON) -m repro.lint tests benchmarks \
		--select DET001,DET002,DET004 --baseline lint-baseline-tests.json

# Whole-program analysis (--xmod): cross-module RNG lineage, checkpoint
# coverage/symmetry, the package layering DAG, and SQL-vs-schema checks,
# with the per-module rules riding along.  The facts cache makes warm
# reruns cheap; it is content-hashed, so edits invalidate per file.
xmodlint:
	$(RUN_ENV) $(PYTHON) -m repro.lint src --xmod \
		--xmod-cache .repro-lint-cache.json --baseline lint-baseline.json

# The full pre-merge gate: static determinism lint (per-module and
# whole-program) + the tier-1 suite.
check: lint xmodlint
	$(RUN_ENV) $(PYTHON) -m pytest -x -q

bench:
	$(RUN_ENV) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

profile:
	$(RUN_ENV) $(PYTHON) -m benchmarks.perf.profile_pipeline

# Chaos harness: the seeded small study under the default FaultProfile,
# asserting the dataset comes out complete (plus the zero-fault identity).
chaos:
	$(RUN_ENV) $(PYTHON) -m pytest tests/test_chaos_smoke.py -v

# Kill-and-resume harness: SIGKILL a checkpointed study subprocess at
# seeded points, resume it, and assert the final dataset and deterministic
# metrics are byte-identical to an uninterrupted run (plain and --chaos).
crashtest:
	$(RUN_ENV) $(PYTHON) -m pytest tests/test_checkpoint_resume.py -v

# Sharded-execution harness: supervisor/merge/plan unit+property tests plus
# the end-to-end CLI acceptance — --jobs 4 byte-identical to --jobs 1 (plain
# and --chaos), a SIGKILLed worker's shard resuming from its own WAL, and
# the degraded/unrecoverable exit codes.
shardtest:
	$(RUN_ENV) $(PYTHON) -m pytest tests/shard/ -v
	$(RUN_ENV) $(PYTHON) -m pytest tests/test_checkpoint_resume.py -k Sharded -v

# Store harness: the SQLite dataset backend — byte-identical export vs the
# legacy JSONL path (plain, --chaos, --jobs 4), SQL queries pinned equal to
# the in-memory analyses, and the WAL-replay/shard-merge ingest paths.
storetest:
	$(RUN_ENV) $(PYTHON) -m pytest tests/store/ -v

# Storage-fault sweep: every failpoint in the repro.failpoints catalog is
# injected mid-run (SIGKILL, torn write, ENOSPC/EIO, hang, poison) and the
# recovery path driven to one of exactly two outcomes — a byte-identical
# resumed dataset, or a named refusal with a documented exit code.  A
# completeness test pins the scenario table to the registry, so a new
# failpoint without a sweep scenario fails here.
faultsweep:
	$(RUN_ENV) $(PYTHON) -m pytest tests/test_fault_sweep.py tests/util/test_failpoints.py -v

# Observability smoke: the chaos study with metrics enabled, emitting the
# run manifest (config hash, seed, every counter/gauge) to metrics.json.
metrics:
	$(RUN_ENV) $(PYTHON) -m repro.cli run --chaos --metrics metrics.json --out study.jsonl
	$(RUN_ENV) $(PYTHON) -m pytest tests/test_metrics_manifest.py -v

report:
	$(RUN_ENV) $(PYTHON) examples/paper_reproduction.py

examples:
	$(RUN_ENV) $(PYTHON) examples/quickstart.py
	$(RUN_ENV) $(PYTHON) examples/custom_farm.py
	$(RUN_ENV) $(PYTHON) examples/fraud_detection.py
	$(RUN_ENV) $(PYTHON) examples/extended_study.py

clean:
	rm -rf .pytest_cache .benchmarks build dist *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
