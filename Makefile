# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench report examples clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) examples/paper_reproduction.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/custom_farm.py
	$(PYTHON) examples/fraud_detection.py
	$(PYTHON) examples/extended_study.py

clean:
	rm -rf .pytest_cache .benchmarks build dist *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
